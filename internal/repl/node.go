// Package repl is the log-shipping replication subsystem (DESIGN.md
// §13): read replicas that follow a primary by pulling its WAL over
// the REPLICATE op class of protocol v2, and epoch-fenced failover
// that promotes a follower without ever letting two primaries
// acknowledge the same write.
//
// Topology. Replication is pull-based and per shard. A follower dials
// the primary's normal serving address and, for every shard, loops a
// FETCH carrying its cursor (the shard's durably applied LSN): the
// primary answers with the raw WAL frames after that LSN, straight
// from its segment files, and the follower persists them verbatim and
// applies them through the engine-agnostic replay path — the two WAL
// timelines stay byte-identical. The FETCH also carries the
// follower's applied LSN, which doubles as the acknowledgement for
// lag tracking and synchronous replication. When a follower's cursor
// has fallen below the primary's retained WAL, the primary redirects
// it to checkpoint shipping: an LSN-consistent serialized tree is
// streamed in chunks and installed wholesale, and WAL shipping
// resumes from the checkpoint's LSN.
//
// Fencing. Every store persists a monotone epoch in its MANIFEST.
// Promotion picks a higher epoch and persists it before it takes
// effect; every replicated message carries the sender's epoch and is
// rejected (StatusFenced) on mismatch, and a primary that observes a
// higher rival epoch refuses every subsequent WAL append — so a
// deposed primary stops acknowledging writes the moment it hears from
// its successor's era, and a follower never applies records from a
// deposed primary's timeline.
//
// Synchronous mode (Config.Sync) installs a commit gate on the
// primary: a write is acknowledged only after some follower reports
// the write's LSN durably applied (or the gate times out and the
// client gets an error while the write stands locally — the same
// contract as a crash between commit and ack). With one follower this
// is strict primary+1 durability; with several it is "at least the
// fastest follower", so promotion of the most-caught-up follower
// preserves every acknowledged write.
package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/obs"
	"pbtree/internal/serve"
)

// Defaults for the zero Config values.
const (
	DefaultPoll        = 50 * time.Millisecond
	DefaultSyncTimeout = 2 * time.Second
	defaultCallTimeout = 10 * time.Second
)

// ErrSyncTimeout reports that a synchronously replicated write was not
// acknowledged by any follower in time. The write is durable and
// visible on the primary; the client must treat it like a crash after
// commit: unknown, retryable.
var ErrSyncTimeout = errors.New("repl: no follower acknowledged the write in time")

// Transport issues REPLICATE exchanges against a peer. The default
// implementation wraps a serve.Client; tests substitute in-process
// transports with deterministic fault injection.
type Transport interface {
	Do(req *serve.Request) (*serve.Response, error)
	Close() error
}

// clientTransport is the default Transport: a pipelined protocol-v2
// client connection.
type clientTransport struct{ c *serve.Client }

func (t *clientTransport) Do(req *serve.Request) (*serve.Response, error) { return t.c.Do(req) }
func (t *clientTransport) Close() error                                   { return t.c.Close() }

// dialTransport dials a peer's serving address.
func dialTransport(addr string) (Transport, error) {
	c, err := serve.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.Timeout = defaultCallTimeout
	return &clientTransport{c: c}, nil
}

// Config configures a replication Node.
type Config struct {
	// Store is the node's local store. Open it with
	// StoreConfig.Replica when Primary is set.
	Store *serve.Store

	// Primary is the primary's serving address. Empty means this node
	// is the primary (it serves FETCH; it runs no pull loops).
	Primary string

	// Sync enables synchronous replication on a primary: writes are
	// acknowledged only after a follower ack (see the package comment).
	Sync bool

	// SyncTimeout bounds how long a synchronous write waits for a
	// follower ack (default DefaultSyncTimeout).
	SyncTimeout time.Duration

	// Poll is the follower's idle poll interval once caught up
	// (default DefaultPoll). While behind, fetches are back to back.
	Poll time.Duration

	// MaxFetchBytes is the per-FETCH payload budget (default
	// serve.MaxReplBytes, which is also the cap).
	MaxFetchBytes int

	// Metrics receives the replication counters (may be nil).
	Metrics *obs.Metrics

	// Logf receives replication state transitions (may be nil).
	Logf func(format string, args ...any)

	// Dial overrides the transport used to reach the primary (tests).
	Dial func(addr string) (Transport, error)
}

// snapEntry is one cached checkpoint stream of a shard, regenerated
// when a follower's cursor has moved past it.
type snapEntry struct {
	lsn  uint64
	data []byte
}

// Node is one replication participant: it serves the REPLICATE op
// class for its store (wire it into serve.ServerConfig.Repl) and, on
// a follower, runs the per-shard pull loops against the primary.
type Node struct {
	cfg Config
	st  *serve.Store

	// Commit-gate state (primary, Sync): acked[shard] is the highest
	// LSN any follower has reported durably applied.
	gateMu   sync.Mutex
	gateCond *sync.Cond
	acked    []uint64

	// Checkpoint-stream cache, one entry per shard.
	snapMu sync.Mutex
	snaps  map[int]*snapEntry

	// The shared transport to the primary (follower side).
	trMu sync.Mutex
	tr   Transport

	// primaryLSNs[shard] is the primary's last LSN from the most
	// recent FETCH answer — the follower's lag gauge.
	primaryLSNs []atomic.Uint64

	// lastInstalled[shard] is 1 + the LSN of the last checkpoint
	// stream installed (0 = never): it stops a follower from
	// re-installing the same stream every poll while the primary sits
	// at the stream's LSN (a seeded primary with no writes yet).
	lastInstalled []atomic.Uint64

	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Node over the store. Call Start to install the sync
// gate (primary) or launch the pull loops (follower).
func New(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("repl: Config.Store is required")
	}
	if cfg.Primary != "" && !cfg.Store.IsReplica() {
		return nil, errors.New("repl: Config.Primary set but the store is not a replica (open it with StoreConfig.Replica)")
	}
	if cfg.Primary == "" && cfg.Store.IsReplica() {
		return nil, errors.New("repl: a replica store needs Config.Primary to follow")
	}
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = DefaultSyncTimeout
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.MaxFetchBytes <= 0 || cfg.MaxFetchBytes > serve.MaxReplBytes {
		cfg.MaxFetchBytes = serve.MaxReplBytes
	}
	if cfg.Dial == nil {
		cfg.Dial = dialTransport
	}
	n := &Node{
		cfg:           cfg,
		st:            cfg.Store,
		acked:         make([]uint64, cfg.Store.Shards()),
		snaps:         make(map[int]*snapEntry),
		primaryLSNs:   make([]atomic.Uint64, cfg.Store.Shards()),
		lastInstalled: make([]atomic.Uint64, cfg.Store.Shards()),
		stop:          make(chan struct{}),
	}
	n.gateCond = sync.NewCond(&n.gateMu)
	return n, nil
}

// Start activates the node: on a primary it installs the synchronous
// commit gate (when Config.Sync); on a follower it launches one pull
// loop per shard.
func (n *Node) Start() error {
	if n.cfg.Primary == "" {
		if n.cfg.Sync {
			n.st.SetCommitGate(n.syncGate)
		}
		return nil
	}
	for i := 0; i < n.st.Shards(); i++ {
		n.wg.Add(1)
		go n.shardLoop(i)
	}
	return nil
}

// Close stops the pull loops, removes the commit gate and closes the
// primary transport.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.stopLoops()
		n.st.SetCommitGate(nil)
		n.gateMu.Lock()
		n.gateCond.Broadcast() // release gate waiters into their timeout check
		n.gateMu.Unlock()
		n.wg.Wait()
		n.trMu.Lock()
		if n.tr != nil {
			n.tr.Close()
			n.tr = nil
		}
		n.trMu.Unlock()
	})
	return nil
}

func (n *Node) stopLoops() { n.stopOnce.Do(func() { close(n.stop) }) }

func (n *Node) stopped() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// sleep waits d or until the node stops; it reports whether the node
// is still running.
func (n *Node) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-n.stop:
		return false
	case <-t.C:
		return true
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Role reports the node's current replication role.
func (n *Node) Role() serve.ReplRole {
	switch {
	case n.st.IsReplica():
		return serve.RoleReplica
	case n.st.Fenced():
		return serve.RoleFenced
	default:
		return serve.RolePrimary
	}
}

// ---------------------------------------------------------------------
// Serving side: the REPLICATE handler (serve.ReplHandler).

func okResp(rp *serve.ReplResp) *serve.Response {
	return &serve.Response{Status: serve.StatusOK, Repl: rp}
}

func errResp(format string, args ...any) *serve.Response {
	return &serve.Response{Status: serve.StatusErr, Err: fmt.Sprintf(format, args...)}
}

// HandleReplicate answers one REPLICATE request (PROTOCOL.md §9). It
// runs on the server's connection goroutines; everything it touches
// is lock-free or under the node's own short-held mutexes.
func (n *Node) HandleReplicate(r *serve.ReplReq) *serve.Response {
	switch r.Kind {
	case serve.ReplStatus:
		// The probe: answers from any role, never fences, never
		// rejects — epoch 0 means "asking".
		return okResp(&serve.ReplResp{
			Kind:      serve.ReplStatus,
			Epoch:     n.st.Epoch(),
			Role:      n.Role(),
			ShardLSNs: n.st.AppliedLSNs(),
		})
	case serve.ReplFence:
		n.st.Fence(r.Epoch)
		return okResp(&serve.ReplResp{Kind: serve.ReplFence, Epoch: n.st.Epoch()})
	}

	// The data-moving kinds require an exact epoch match.
	have := n.st.Epoch()
	if r.Epoch != have || n.st.Fenced() {
		if r.Epoch > have {
			// A peer from a later era announced itself: fence before
			// rejecting, so no local write can be acknowledged after
			// this point either.
			n.st.Fence(r.Epoch)
		}
		high := have
		if fb := n.st.FencedBy(); fb > high {
			high = fb
		}
		if r.Epoch > high {
			high = r.Epoch
		}
		n.cfg.Metrics.ReplFencedReject()
		return &serve.Response{Status: serve.StatusFenced, FencedEpoch: high}
	}

	switch r.Kind {
	case serve.ReplFetch:
		return n.handleFetch(r)
	case serve.ReplSnapFetch:
		return n.handleSnapFetch(r)
	}
	return errResp("repl: unknown REPLICATE kind %d", uint8(r.Kind))
}

// budget clamps a request's byte budget to the node's and the wire's.
func (n *Node) budget(max uint32) int {
	b := int(max)
	if b <= 0 || b > n.cfg.MaxFetchBytes {
		b = n.cfg.MaxFetchBytes
	}
	return b
}

// handleFetch serves WAL frames after the follower's cursor, records
// the follower's ack, and redirects to checkpoint shipping when the
// cursor predates the retained WAL.
func (n *Node) handleFetch(r *serve.ReplReq) *serve.Response {
	shard := int(r.Shard)
	if shard >= n.st.Shards() {
		return errResp("repl: shard %d out of range (%d shards)", shard, n.st.Shards())
	}
	n.recordAck(shard, r.Applied)
	frames, count, err := n.st.WALTail(shard, r.After, n.budget(r.Max))
	var retired serve.WALRetiredError
	if errors.As(err, &retired) {
		ent, serr := n.snapshotFor(shard, r.After)
		if serr != nil {
			return errResp("repl: shard %d checkpoint: %v", shard, serr)
		}
		return okResp(&serve.ReplResp{
			Kind:     serve.ReplSnap,
			Epoch:    n.st.Epoch(),
			SnapLSN:  ent.lsn,
			SnapSize: uint64(len(ent.data)),
		})
	}
	if err != nil {
		return errResp("repl: shard %d WAL tail: %v", shard, err)
	}
	n.cfg.Metrics.ReplShip(count, len(frames))
	return okResp(&serve.ReplResp{
		Kind:       serve.ReplFetch,
		Epoch:      n.st.Epoch(),
		PrimaryLSN: n.st.ReplicaCursor(shard),
		Count:      uint32(count),
		Records:    frames,
	})
}

// handleSnapFetch serves one chunk of a shard checkpoint stream.
func (n *Node) handleSnapFetch(r *serve.ReplReq) *serve.Response {
	shard := int(r.Shard)
	if shard >= n.st.Shards() {
		return errResp("repl: shard %d out of range (%d shards)", shard, n.st.Shards())
	}
	ent, err := n.snapshotAt(shard, r.SnapLSN)
	if err != nil {
		return errResp("repl: shard %d checkpoint: %v", shard, err)
	}
	size := uint64(len(ent.data))
	off := r.Offset
	if ent.lsn != r.SnapLSN || off > size {
		// The requested stream is gone (regenerated) or the offset is
		// nonsense: answer with the current stream's header at offset
		// 0 and let the follower restart its accumulation.
		off = 0
	}
	end := off + uint64(n.budget(r.Max))
	if end > size {
		end = size
	}
	done := end == size
	if done {
		n.cfg.Metrics.ReplSnapshotShipped()
	}
	return okResp(&serve.ReplResp{
		Kind:     serve.ReplSnap,
		Epoch:    n.st.Epoch(),
		SnapLSN:  ent.lsn,
		SnapSize: size,
		Offset:   off,
		Done:     done,
		Chunk:    ent.data[off:end],
	})
}

// snapshotFor returns a cached checkpoint stream that advances a
// follower past `after`, regenerating when the cache can't.
func (n *Node) snapshotFor(shard int, after uint64) (*snapEntry, error) {
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	if ent := n.snaps[shard]; ent != nil && ent.lsn > after {
		return ent, nil
	}
	return n.regenSnapshotLocked(shard)
}

// snapshotAt returns the cached checkpoint stream covering snapLSN
// (any, when snapLSN is 0), regenerating a fresh one on a miss.
func (n *Node) snapshotAt(shard int, snapLSN uint64) (*snapEntry, error) {
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	if ent := n.snaps[shard]; ent != nil && (snapLSN == 0 || ent.lsn == snapLSN) {
		return ent, nil
	}
	return n.regenSnapshotLocked(shard)
}

func (n *Node) regenSnapshotLocked(shard int) (*snapEntry, error) {
	lsn, data, err := n.st.SnapshotShard(shard)
	if err != nil {
		return nil, err
	}
	ent := &snapEntry{lsn: lsn, data: data}
	n.snaps[shard] = ent
	n.logf("repl: shard %d checkpoint stream regenerated at LSN %d (%d bytes)", shard, lsn, len(data))
	return ent, nil
}

// recordAck folds one follower's applied LSN into the gate state.
func (n *Node) recordAck(shard int, applied uint64) {
	if shard >= len(n.acked) {
		return
	}
	n.gateMu.Lock()
	if applied > n.acked[shard] {
		n.acked[shard] = applied
		n.gateCond.Broadcast()
	}
	n.gateMu.Unlock()
}

// syncGate is the synchronous-replication commit gate
// (serve.Store.SetCommitGate): it holds a batch's acknowledgement
// until some follower reports the batch's LSN durably applied. It
// blocks the shard's writer goroutine, but never the followers — they
// fetch from WAL segment files the group commit has already written.
func (n *Node) syncGate(shard int, lsn uint64) error {
	deadline := time.Now().Add(n.cfg.SyncTimeout)
	wake := time.AfterFunc(n.cfg.SyncTimeout, func() {
		n.gateMu.Lock()
		n.gateCond.Broadcast()
		n.gateMu.Unlock()
	})
	defer wake.Stop()
	n.gateMu.Lock()
	defer n.gateMu.Unlock()
	for n.acked[shard] < lsn {
		if n.stopped() && n.cfg.Primary == "" {
			return fmt.Errorf("repl: shard %d LSN %d: node closed: %w", shard, lsn, ErrSyncTimeout)
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("repl: shard %d LSN %d unacknowledged after %v: %w",
				shard, lsn, n.cfg.SyncTimeout, ErrSyncTimeout)
		}
		n.gateCond.Wait()
	}
	return nil
}

// ---------------------------------------------------------------------
// Follower side: the pull loops.

// transport returns the shared connection to the primary, dialing on
// demand.
func (n *Node) transport() (Transport, error) {
	n.trMu.Lock()
	defer n.trMu.Unlock()
	if n.tr != nil {
		return n.tr, nil
	}
	tr, err := n.cfg.Dial(n.cfg.Primary)
	if err != nil {
		return nil, err
	}
	n.tr = tr
	return tr, nil
}

// dropTransport discards a failed connection so the next loop redials.
func (n *Node) dropTransport(tr Transport) {
	n.trMu.Lock()
	if n.tr == tr {
		n.tr = nil
		tr.Close()
	}
	n.trMu.Unlock()
}

// shardLoop pulls one shard from the primary until the node stops or
// is promoted.
func (n *Node) shardLoop(shard int) {
	defer n.wg.Done()
	for {
		if n.stopped() || !n.st.IsReplica() {
			return
		}
		progress, err := n.syncShardOnce(shard)
		switch {
		case err != nil:
			n.logf("repl: shard %d: %v", shard, err)
			if !n.sleep(10 * n.cfg.Poll) {
				return
			}
		case progress:
			// Behind: fetch again immediately.
		default:
			// Caught up: idle poll.
			if !n.sleep(n.cfg.Poll) {
				return
			}
		}
	}
}

// replPayload centralizes response status and epoch handling: it
// returns the payload to act on, or (nil, nil) after adopting a newer
// epoch — the caller simply retries under the new one.
func (n *Node) replPayload(resp *serve.Response, epoch uint64) (*serve.ReplResp, error) {
	adopt := func(e uint64) (*serve.ReplResp, error) {
		if err := n.st.AdoptEpoch(e); err != nil {
			return nil, err
		}
		n.logf("repl: adopted epoch %d", e)
		return nil, nil
	}
	switch resp.Status {
	case serve.StatusOK:
	case serve.StatusFenced:
		if resp.FencedEpoch > epoch {
			return adopt(resp.FencedEpoch)
		}
		return nil, fmt.Errorf("repl: primary rejected epoch %d as stale (its view: %d)", epoch, resp.FencedEpoch)
	default:
		return nil, fmt.Errorf("repl: primary: %s", resp.Err)
	}
	rp := resp.Repl
	if rp == nil {
		return nil, errors.New("repl: OK response without a REPLICATE payload")
	}
	if rp.Epoch != epoch {
		if rp.Epoch > epoch {
			return adopt(rp.Epoch)
		}
		// Never apply data from a lower era: the sender is a deposed
		// primary that has not noticed yet.
		return nil, fmt.Errorf("repl: primary epoch %d below ours %d (deposed primary?)", rp.Epoch, epoch)
	}
	return rp, nil
}

// syncShardOnce performs one FETCH round trip and applies its result;
// progress reports whether another immediate fetch is worthwhile.
func (n *Node) syncShardOnce(shard int) (progress bool, err error) {
	tr, err := n.transport()
	if err != nil {
		return false, err
	}
	cursor := n.st.ReplicaCursor(shard)
	epoch := n.st.Epoch()
	resp, err := tr.Do(&serve.Request{Op: serve.OpReplicate, Repl: &serve.ReplReq{
		Kind:    serve.ReplFetch,
		Epoch:   epoch,
		Shard:   uint32(shard),
		After:   cursor,
		Applied: cursor,
		Max:     uint32(n.cfg.MaxFetchBytes),
	}})
	if err != nil {
		n.dropTransport(tr)
		return false, err
	}
	rp, err := n.replPayload(resp, epoch)
	if err != nil {
		return false, err
	}
	if rp == nil {
		return true, nil // epoch adopted; refetch under it
	}
	switch rp.Kind {
	case serve.ReplFetch:
		n.primaryLSNs[shard].Store(rp.PrimaryLSN)
		if rp.Count == 0 {
			return false, nil // caught up
		}
		if err := n.st.ReplicaApply(shard, epoch, cursor+1, rp.Records); err != nil {
			var gap serve.CursorGapError
			if errors.As(err, &gap) {
				return true, nil // cursor moved underneath; refetch from it
			}
			return false, err
		}
		n.cfg.Metrics.ReplApply(uint64(rp.Count))
		return true, nil
	case serve.ReplSnap:
		// Cursor retired: switch to checkpoint shipping. No immediate
		// refetch afterwards — either the install moved the cursor and
		// one poll later the FETCH streams from it, or the primary is
		// still sitting at the installed LSN and there is nothing new.
		return false, n.snapshotSync(shard, tr, rp)
	}
	return false, fmt.Errorf("repl: unexpected REPLICATE answer kind %d", uint8(rp.Kind))
}

// snapshotSync accumulates a checkpoint stream chunk by chunk and
// installs it, restarting cleanly if the primary regenerates the
// stream mid-transfer.
func (n *Node) snapshotSync(shard int, tr Transport, first *serve.ReplResp) error {
	snapLSN, size := first.SnapLSN, first.SnapSize
	if li := n.lastInstalled[shard].Load(); li > 0 && snapLSN <= li-1 {
		return nil // this stream (or an older one) is already installed
	}
	n.logf("repl: shard %d resyncing from checkpoint at LSN %d (%d bytes)", shard, snapLSN, size)
	buf := make([]byte, 0, size)
	for {
		if n.stopped() || !n.st.IsReplica() {
			return nil
		}
		epoch := n.st.Epoch()
		resp, err := tr.Do(&serve.Request{Op: serve.OpReplicate, Repl: &serve.ReplReq{
			Kind:    serve.ReplSnapFetch,
			Epoch:   epoch,
			Shard:   uint32(shard),
			SnapLSN: snapLSN,
			Offset:  uint64(len(buf)),
			Max:     uint32(n.cfg.MaxFetchBytes),
		}})
		if err != nil {
			n.dropTransport(tr)
			return err
		}
		rp, err := n.replPayload(resp, epoch)
		if err != nil {
			return err
		}
		if rp == nil {
			continue // epoch adopted; refetch the chunk under it
		}
		if rp.SnapLSN != snapLSN {
			n.logf("repl: shard %d checkpoint stream restarted at LSN %d", shard, rp.SnapLSN)
			snapLSN, size = rp.SnapLSN, rp.SnapSize
			buf = buf[:0]
			if rp.Offset != 0 {
				continue
			}
		}
		if rp.Offset != uint64(len(buf)) {
			return fmt.Errorf("repl: shard %d checkpoint chunk at offset %d, want %d", shard, rp.Offset, len(buf))
		}
		buf = append(buf, rp.Chunk...)
		if rp.Done {
			if err := n.st.ReplicaInstall(shard, epoch, snapLSN, buf); err != nil {
				return err
			}
			n.lastInstalled[shard].Store(snapLSN + 1)
			n.cfg.Metrics.ReplSnapshotInstalled()
			n.logf("repl: shard %d installed checkpoint at LSN %d", shard, snapLSN)
			return nil
		}
		if len(rp.Chunk) == 0 {
			return fmt.Errorf("repl: shard %d: empty non-final checkpoint chunk at offset %d of %d", shard, len(buf), size)
		}
	}
}

// ---------------------------------------------------------------------
// Failover.

// Promote turns this follower into the primary under newEpoch (0
// picks current+1). The epoch is persisted before it takes effect;
// the pull loops stop; the synchronous commit gate is installed when
// Config.Sync; and the deposed primary is told (best effort — it is
// fenced by epoch checks even if the message never arrives).
func (n *Node) Promote(newEpoch uint64) error {
	if newEpoch == 0 {
		newEpoch = n.st.Epoch() + 1
	}
	if err := n.st.Promote(newEpoch); err != nil {
		return err
	}
	n.stopLoops()
	if n.cfg.Sync {
		n.st.SetCommitGate(n.syncGate)
	}
	if n.cfg.Primary != "" {
		go n.fenceOldPrimary(newEpoch)
	}
	n.logf("repl: promoted to primary at epoch %d", newEpoch)
	return nil
}

// fenceOldPrimary sends the deposed primary a FENCE so it stops
// acknowledging writes immediately instead of at its next REPLICATE
// contact. Best effort: a partition that eats it does not weaken the
// epoch guarantee, only widens the deposed primary's unacknowledged
// window.
func (n *Node) fenceOldPrimary(epoch uint64) {
	tr, err := n.transport()
	if err != nil {
		n.logf("repl: fencing old primary: %v", err)
		return
	}
	if _, err := tr.Do(&serve.Request{Op: serve.OpReplicate, Repl: &serve.ReplReq{
		Kind:  serve.ReplFence,
		Epoch: epoch,
	}}); err != nil {
		n.logf("repl: fencing old primary: %v", err)
	}
}

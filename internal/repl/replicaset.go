package repl

// The read-replica client. DialReplicaSet connects to a primary and
// its replicas, fans reads out across the healthy replicas under a
// bounded-staleness contract, and routes every write (and any read
// with no healthy replica) to the primary.
//
// Health is established by a background STATUS probe: a replica is
// readable while it reports RoleReplica at the primary's epoch and
// its total lag — the sum over shards of the primary's applied LSN
// minus the replica's — is within MaxLagRecords. That is the
// staleness contract: a read served by a replica reflects every write
// except, at worst, the last MaxLagRecords WAL records (and is never
// torn: replicas publish whole batches, exactly like the primary).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pbtree/internal/core"
	"pbtree/internal/serve"
)

// Defaults for the zero ReplicaSetConfig values.
const (
	DefaultMaxLagRecords = 4096
	DefaultProbeInterval = 100 * time.Millisecond
)

// ReplicaSetConfig configures DialReplicaSet.
type ReplicaSetConfig struct {
	// Primary is the primary's serving address (required).
	Primary string

	// Replicas are the replica serving addresses (may be empty, in
	// which case everything goes to the primary).
	Replicas []string

	// MaxLagRecords bounds a readable replica's total lag in WAL
	// records (default DefaultMaxLagRecords).
	MaxLagRecords uint64

	// ProbeInterval is the health-probe period (default
	// DefaultProbeInterval).
	ProbeInterval time.Duration

	// Timeout bounds each call (0 = none).
	Timeout time.Duration
}

// member is one replica connection and its probed health.
type member struct {
	addr    string
	healthy atomic.Bool

	mu sync.Mutex
	c  *serve.Client
}

// client returns the member's connection, dialing on demand.
func (m *member) client(timeout time.Duration) (*serve.Client, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.c != nil {
		return m.c, nil
	}
	c, err := serve.Dial(m.addr)
	if err != nil {
		return nil, err
	}
	c.Timeout = timeout
	m.c = c
	return c, nil
}

// drop closes the member's connection and marks it unhealthy.
func (m *member) drop() {
	m.healthy.Store(false)
	m.mu.Lock()
	if m.c != nil {
		m.c.Close()
		m.c = nil
	}
	m.mu.Unlock()
}

// ReplicaSet is a client over one primary and its read replicas:
// reads round-robin across healthy replicas (bounded staleness),
// writes and stats go to the primary, and a replica that errors or
// lags out is dropped until the probe readmits it.
type ReplicaSet struct {
	cfg     ReplicaSetConfig
	primary *serve.Client
	reps    []*member
	rr      atomic.Uint64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// DialReplicaSet connects to the primary (which must be reachable)
// and starts the health probe over the replicas. Replicas that are
// down now are dialed again by the probe later.
func DialReplicaSet(cfg ReplicaSetConfig) (*ReplicaSet, error) {
	if cfg.Primary == "" {
		return nil, errors.New("repl: ReplicaSetConfig.Primary is required")
	}
	if cfg.MaxLagRecords == 0 {
		cfg.MaxLagRecords = DefaultMaxLagRecords
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	pc, err := serve.Dial(cfg.Primary)
	if err != nil {
		return nil, fmt.Errorf("repl: primary %s: %w", cfg.Primary, err)
	}
	pc.Timeout = cfg.Timeout
	rs := &ReplicaSet{cfg: cfg, primary: pc, stop: make(chan struct{})}
	for _, addr := range cfg.Replicas {
		rs.reps = append(rs.reps, &member{addr: addr})
	}
	rs.probeOnce() // establish health before the first read
	rs.wg.Add(1)
	go rs.probeLoop()
	return rs, nil
}

// Close stops the probe and closes every connection.
func (rs *ReplicaSet) Close() error {
	rs.closeOnce.Do(func() {
		close(rs.stop)
		rs.wg.Wait()
		for _, m := range rs.reps {
			m.drop()
		}
		rs.primary.Close()
	})
	return nil
}

// Primary exposes the primary connection for calls with no helper
// here (STATS, raw requests).
func (rs *ReplicaSet) Primary() *serve.Client { return rs.primary }

func (rs *ReplicaSet) probeLoop() {
	defer rs.wg.Done()
	t := time.NewTicker(rs.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rs.stop:
			return
		case <-t.C:
			rs.probeOnce()
		}
	}
}

// replStatus issues one STATUS probe on a connection.
func replStatus(c *serve.Client) (*serve.ReplResp, error) {
	resp, err := c.Do(&serve.Request{Op: serve.OpReplicate, Repl: &serve.ReplReq{Kind: serve.ReplStatus}})
	if err != nil {
		return nil, err
	}
	if resp.Status != serve.StatusOK || resp.Repl == nil {
		return nil, fmt.Errorf("repl: STATUS answered %d: %s", resp.Status, resp.Err)
	}
	return resp.Repl, nil
}

// probeOnce refreshes every member's health against the primary's
// current position.
func (rs *ReplicaSet) probeOnce() {
	ps, err := replStatus(rs.primary)
	if err != nil {
		// Can't judge staleness without the primary's position; keep
		// the last verdicts rather than flapping everything down.
		return
	}
	for _, m := range rs.reps {
		c, err := m.client(rs.cfg.Timeout)
		if err != nil {
			m.healthy.Store(false)
			continue
		}
		st, err := replStatus(c)
		if err != nil {
			m.drop()
			continue
		}
		m.healthy.Store(rs.readable(ps, st))
	}
}

// readable decides whether a replica's STATUS admits it for reads
// under the staleness contract.
func (rs *ReplicaSet) readable(primary, replica *serve.ReplResp) bool {
	if replica.Role != serve.RoleReplica || replica.Epoch != primary.Epoch {
		return false
	}
	if len(replica.ShardLSNs) != len(primary.ShardLSNs) {
		return false
	}
	var lag uint64
	for i, p := range primary.ShardLSNs {
		if r := replica.ShardLSNs[i]; p > r {
			lag += p - r
		}
	}
	return lag <= rs.cfg.MaxLagRecords
}

// reader picks the connection for one read: the next healthy replica
// in round-robin order, else the primary (nil member).
func (rs *ReplicaSet) reader() (*serve.Client, *member) {
	if n := len(rs.reps); n > 0 {
		start := int(rs.rr.Add(1))
		for i := 0; i < n; i++ {
			m := rs.reps[(start+i)%n]
			if !m.healthy.Load() {
				continue
			}
			if c, err := m.client(rs.cfg.Timeout); err == nil {
				return c, m
			}
			m.healthy.Store(false)
		}
	}
	return rs.primary, nil
}

// Get looks up one key on a healthy replica, retrying on the primary
// if the replica fails mid-call.
func (rs *ReplicaSet) Get(k core.Key) (core.TID, bool, error) {
	c, m := rs.reader()
	tid, ok, err := c.Get(k)
	if err != nil && m != nil {
		m.drop()
		return rs.primary.Get(k)
	}
	return tid, ok, err
}

// MGet looks up a batch of keys (result aligns with keys).
func (rs *ReplicaSet) MGet(keys []core.Key) ([]serve.Lookup, error) {
	c, m := rs.reader()
	ls, err := c.MGet(keys)
	if err != nil && m != nil {
		m.drop()
		return rs.primary.MGet(keys)
	}
	return ls, err
}

// Scan returns up to limit pairs with keys in [start, end].
func (rs *ReplicaSet) Scan(start, end core.Key, limit int) ([]core.Pair, error) {
	c, m := rs.reader()
	ps, err := c.Scan(start, end, limit)
	if err != nil && m != nil {
		m.drop()
		return rs.primary.Scan(start, end, limit)
	}
	return ps, err
}

// Put upserts the pairs on the primary.
func (rs *ReplicaSet) Put(pairs ...core.Pair) error { return rs.primary.Put(pairs...) }

// Del deletes the keys on the primary.
func (rs *ReplicaSet) Del(keys ...core.Key) error { return rs.primary.Del(keys...) }

// Stats fetches the primary's JSON stats blob.
func (rs *ReplicaSet) Stats() ([]byte, error) { return rs.primary.Stats() }

// Healthy reports how many replicas are currently admitted for reads.
func (rs *ReplicaSet) Healthy() int {
	n := 0
	for _, m := range rs.reps {
		if m.healthy.Load() {
			n++
		}
	}
	return n
}

// Package csbtree implements Cache-Sensitive B+-Trees (Rao and Ross,
// SIGMOD 2000) over the simulated memory hierarchy, as the baseline
// the paper compares Prefetching B+-Trees against, plus the combined
// pCSB+-Tree (CSB+ layout with wide prefetched nodes).
//
// A CSB+-Tree non-leaf node keeps only one child pointer: all children
// of a node are stored contiguously in a "node group", so the address
// of child i is firstChild + i*nodeSize. With 4-byte keys this nearly
// doubles the fanout of a cache-line-sized node (keynum + 14 keys +
// 1 childptr in 64 bytes).
//
// Matching the paper's experimental scope, the package implements
// bulkload and search (sections 4.1.2 and 4.2); updates are not
// supported.
package csbtree

import (
	"fmt"
	"math"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

// Config describes a CSB+-Tree variant.
type Config struct {
	// Width is the node width in cache lines: 1 is the classic
	// CSB+-Tree, 8 the paper's p8CSB+-Tree.
	Width int

	// Prefetch enables prefetching all lines of a node before
	// searching it (the pCSB+ combination).
	Prefetch bool

	// Mem is the memory model (simulated or native); nil selects
	// memsys.Default().
	Mem memsys.Model

	// Cost is the instruction cost model; zero value selects
	// core.DefaultCostModel().
	Cost core.CostModel
}

// node is a CSB+-Tree node. Children of a non-leaf live contiguously
// in simulated memory; only the first child's address is stored in the
// node (ptrOff), children[] is the Go-side view of the group.
type node struct {
	addr     uint64
	leaf     bool
	nkeys    int
	keys     []core.Key
	children []*node // non-leaf: the node group
	tids     []core.TID
	next     *node // leaf chain
}

// Tree is a CSB+-Tree over a simulated memory hierarchy. It is not
// safe for concurrent use.
type Tree struct {
	cfg   Config
	mem   memsys.Model
	space *memsys.AddressSpace
	cost  core.CostModel

	nodeSize   int // bytes
	nlMaxKeys  int // non-leaf key capacity (2*w*m - 2)
	leafMax    int // leaf pair capacity (w*m - 1)
	nlKeyOff   int
	nlPtrOff   int
	leafKeyOff int
	leafTIDOff int
	leafNext   int

	root   *node
	height int
	count  int
}

// New creates an empty CSB+-Tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Width == 0 {
		cfg.Width = 1
	}
	if cfg.Width < 0 {
		return nil, fmt.Errorf("csbtree: width %d must be positive", cfg.Width)
	}
	if memsys.IsNil(cfg.Mem) {
		cfg.Mem = memsys.Default()
	}
	if cfg.Cost == (core.CostModel{}) {
		cfg.Cost = core.DefaultCostModel()
	}
	line := cfg.Mem.Config().LineSize
	t := &Tree{
		cfg:   cfg,
		mem:   cfg.Mem,
		space: memsys.NewAddressSpace(line),
		cost:  cfg.Cost,
	}
	size := cfg.Width * line
	fields := size / 4
	wm := fields / 2
	t.nodeSize = size
	t.nlMaxKeys = fields - 2 // keynum + keys + one childptr
	t.leafMax = wm - 1
	t.nlKeyOff = 4
	t.nlPtrOff = 4 + 4*t.nlMaxKeys
	t.leafKeyOff = 4
	t.leafTIDOff = 4 + 4*t.leafMax
	t.leafNext = size - 4
	t.root = t.newLeaf()
	t.root.addr = t.space.Alloc(t.nodeSize)
	t.height = 1
	return t, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns "CSB+" or "p<w>CSB+".
func (t *Tree) Name() string {
	if !t.cfg.Prefetch && t.cfg.Width == 1 {
		return "CSB+"
	}
	return fmt.Sprintf("p%dCSB+", t.cfg.Width)
}

// Mem returns the memory model the tree charges to.
func (t *Tree) Mem() memsys.Model { return t.mem }

// Height reports the number of levels, counting the leaf level.
func (t *Tree) Height() int { return t.height }

// Len reports the number of pairs in the index.
func (t *Tree) Len() int { return t.count }

// SpaceUsed reports the simulated bytes allocated for nodes.
func (t *Tree) SpaceUsed() uint64 { return t.space.Used() }

// LeafCapacity reports the maximum pairs per leaf.
func (t *Tree) LeafCapacity() int { return t.leafMax }

// MaxFanout reports the maximum children per non-leaf node.
func (t *Tree) MaxFanout() int { return t.nlMaxKeys + 1 }

func (t *Tree) newLeaf() *node {
	return &node{
		leaf: true,
		keys: make([]core.Key, t.leafMax),
		tids: make([]core.TID, t.leafMax),
	}
}

func (t *Tree) newNonLeaf() *node {
	return &node{keys: make([]core.Key, t.nlMaxKeys)}
}

// Bulkload replaces the contents with the given sorted, duplicate-free
// pairs at the given fill factor.
func (t *Tree) Bulkload(pairs []core.Pair, fill float64) error {
	if fill <= 0 || fill > 1 {
		return fmt.Errorf("csbtree: bulkload factor %v outside (0, 1]", fill)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key <= pairs[i-1].Key {
			return fmt.Errorf("csbtree: bulkload input not sorted/unique at %d", i)
		}
	}
	t.count = len(pairs)
	if len(pairs) == 0 {
		t.root = t.newLeaf()
		t.root.addr = t.space.Alloc(t.nodeSize)
		t.height = 1
		return nil
	}

	// Build the leaf level. Addresses are assigned when the parent
	// group is formed, so each group is contiguous.
	per := fillCount(t.leafMax, fill)
	var leaves []*node
	for start := 0; start < len(pairs); start += per {
		end := start + per
		if end > len(pairs) {
			end = len(pairs)
		}
		n := t.newLeaf()
		for i, p := range pairs[start:end] {
			n.keys[i] = p.Key
			n.tids[i] = p.TID
		}
		n.nkeys = end - start
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = n
		}
		leaves = append(leaves, n)
	}

	level := leaves
	mins := make([]core.Key, len(level))
	for i, n := range level {
		mins[i] = n.keys[0]
	}
	t.height = 1
	for len(level) > 1 {
		level, mins = t.buildLevel(level, mins, fill)
		t.height++
	}
	t.root = level[0]
	t.root.addr = t.space.Alloc(t.nodeSize)
	t.chargeNodeWrite(t.root)
	return nil
}

// buildLevel groups children into non-leaf nodes, allocating each
// group of children contiguously (the CSB+ invariant).
func (t *Tree) buildLevel(children []*node, mins []core.Key, fill float64) ([]*node, []core.Key) {
	per := fillCount(t.nlMaxKeys, fill) + 1
	counts := groupCounts(len(children), per, t.nlMaxKeys+1)
	level := make([]*node, 0, len(counts))
	newMins := make([]core.Key, 0, len(counts))
	start := 0
	for _, cnt := range counts {
		end := start + cnt
		n := t.newNonLeaf()
		// Allocate the child node group contiguously and assign the
		// children their addresses.
		base := t.space.Alloc(t.nodeSize * cnt)
		for i := start; i < end; i++ {
			c := children[i]
			c.addr = base + uint64((i-start)*t.nodeSize)
			t.chargeNodeWrite(c)
			if i > start {
				n.keys[i-start-1] = mins[i]
			}
		}
		n.children = children[start:end]
		n.nkeys = cnt - 1
		level = append(level, n)
		newMins = append(newMins, mins[start])
		start = end
	}
	return level, newMins
}

// chargeNodeWrite charges the simulated writes of laying out a node.
func (t *Tree) chargeNodeWrite(n *node) {
	t.mem.AccessRange(n.addr, t.nodeSize)
	t.mem.Compute(t.cost.Move * uint64(2*n.nkeys+2))
}

// fillCount mirrors the bulkload rounding of the core package.
func fillCount(capacity int, fill float64) int {
	n := int(math.Round(fill * float64(capacity)))
	if n < 1 {
		n = 1
	}
	if n > capacity {
		n = capacity
	}
	return n
}

// groupCounts splits n children into groups of per (capped by cap),
// avoiding a trailing single-child group.
func groupCounts(n, per, cap int) []int {
	counts := make([]int, 0, (n+per-1)/per)
	for n > 0 {
		c := per
		if c > n {
			c = n
		}
		counts = append(counts, c)
		n -= c
	}
	last := len(counts) - 1
	if last >= 1 && counts[last] == 1 {
		if counts[last-1] < cap {
			counts[last-1]++
			counts = counts[:last]
		} else {
			total := counts[last-1] + 1
			counts[last-1] = total - total/2
			counts[last] = total / 2
		}
	}
	return counts
}

// visit models arriving at a node (prefetch all lines if enabled, read
// keynum, charge the visit overhead).
func (t *Tree) visit(n *node) {
	if t.cfg.Prefetch {
		t.mem.PrefetchRange(n.addr, t.nodeSize)
	}
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Visit)
}

// searchKeys binary-searches n's keys, charging comparisons and key
// line touches, returning the child index / upper bound.
func (t *Tree) searchKeys(n *node, key core.Key, keyOff int) (int, bool) {
	lo, hi := 0, n.nkeys
	for lo < hi {
		mid := (lo + hi) / 2
		t.mem.Access(n.addr + uint64(keyOff+4*mid))
		t.mem.Compute(t.cost.Compare)
		switch k := n.keys[mid]; {
		case k == key:
			return mid + 1, true
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// Search looks up key and returns its tupleID.
func (t *Tree) Search(key core.Key) (core.TID, bool) {
	t.mem.Compute(t.cost.Op)
	n := t.root
	for !n.leaf {
		t.visit(n)
		idx, _ := t.searchKeys(n, key, t.nlKeyOff)
		// One pointer read: the child's address is computed from the
		// group base, so no per-child pointer is fetched.
		t.mem.Access(n.addr + uint64(t.nlPtrOff))
		n = n.children[idx]
	}
	t.visit(n)
	ub, found := t.searchKeys(n, key, t.leafKeyOff)
	if !found {
		return 0, false
	}
	i := ub - 1
	t.mem.Access(n.addr + uint64(t.leafTIDOff+4*i))
	return n.tids[i], true
}

// CheckInvariants verifies structure, ordering and the contiguous
// node-group property. It charges nothing to the hierarchy.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("nil root")
	}
	count := 0
	var prevLeaf *node
	var walk func(n *node, depth int, lo, hi *core.Key) error
	walk = func(n *node, depth int, lo, hi *core.Key) error {
		// Leaves may be empty: deletion is lazy and never merges.
		if n != t.root && !n.leaf && n.nkeys < 1 {
			return fmt.Errorf("underfull node at depth %d", depth)
		}
		max := t.nlMaxKeys
		if n.leaf {
			max = t.leafMax
		}
		if n.nkeys > max {
			return fmt.Errorf("overfull node at depth %d", depth)
		}
		for i := 1; i < n.nkeys; i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("unsorted keys at depth %d", depth)
			}
		}
		if n.nkeys > 0 {
			if lo != nil && n.keys[0] < *lo {
				return fmt.Errorf("key below bound at depth %d", depth)
			}
			if hi != nil && n.keys[n.nkeys-1] >= *hi {
				return fmt.Errorf("key above bound at depth %d", depth)
			}
		}
		if n.leaf {
			if depth != t.height {
				return fmt.Errorf("leaf at depth %d, height %d", depth, t.height)
			}
			if prevLeaf != nil && prevLeaf.next != n {
				return fmt.Errorf("broken leaf chain")
			}
			prevLeaf = n
			count += n.nkeys
			return nil
		}
		if len(n.children) != n.nkeys+1 {
			return fmt.Errorf("node group size %d, want %d", len(n.children), n.nkeys+1)
		}
		base := n.children[0].addr
		for i, c := range n.children {
			if c.addr != base+uint64(i*t.nodeSize) {
				return fmt.Errorf("node group not contiguous at child %d", i)
			}
			var clo, chi *core.Key
			clo, chi = lo, hi
			if i > 0 {
				clo = &n.keys[i-1]
			}
			if i < n.nkeys {
				chi = &n.keys[i]
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	if count != t.count {
		return fmt.Errorf("count %d, tree reports %d", count, t.count)
	}
	return nil
}

package csbtree

// Insertion and (lazy) deletion for CSB+-Trees, following Rao and
// Ross's basic CSB+-Tree. The defining cost is that all children of a
// node live in one contiguous node group: splitting a node means
// reallocating the whole group and copying every sibling, which is why
// CSB+-Trees lose to B+-Trees on updates (the "25% worse" result the
// paper cites in section 4.5 — reproduced by the extcsb experiment).
//
// The paper itself implemented only bulkload and search for CSB+;
// updates here are an extension so that the comparison can be measured
// rather than quoted.

import "pbtree/internal/core"

// csbPath records the descent for structure modifications.
type csbPath struct {
	n   *node
	idx int // child index taken
}

// Insert adds (or overwrites) a pair, reporting whether it was new.
func (t *Tree) Insert(key core.Key, tid core.TID) bool {
	t.mem.Compute(t.cost.Op)
	path, leaf := t.descend(key)
	ub, found := t.searchKeys(leaf, key, t.leafKeyOff)
	if found {
		i := ub - 1
		t.mem.Access(leaf.addr + uint64(t.leafTIDOff+4*i))
		t.mem.Compute(t.cost.Copy)
		leaf.tids[i] = tid
		return false
	}
	t.count++
	if leaf.nkeys < t.leafMax {
		t.leafInsertAt(leaf, ub, key, tid)
		return true
	}
	t.splitLeaf(path, leaf, ub, key, tid)
	return true
}

// Delete removes key, reporting whether it was present. Deletion is
// lazy in the extreme (Rao-Ross style): the key is removed and an
// emptied leaf simply stays empty; no groups are reallocated.
func (t *Tree) Delete(key core.Key) bool {
	t.mem.Compute(t.cost.Op)
	_, leaf := t.descend(key)
	ub, found := t.searchKeys(leaf, key, t.leafKeyOff)
	if !found {
		return false
	}
	i := ub - 1
	moved := leaf.nkeys - i - 1
	copy(leaf.keys[i:leaf.nkeys-1], leaf.keys[i+1:leaf.nkeys])
	copy(leaf.tids[i:leaf.nkeys-1], leaf.tids[i+1:leaf.nkeys])
	leaf.nkeys--
	t.count--
	if moved > 0 {
		t.mem.AccessRange(leaf.addr+uint64(t.leafKeyOff+4*i), moved*4)
		t.mem.AccessRange(leaf.addr+uint64(t.leafTIDOff+4*i), moved*4)
	}
	t.mem.Access(leaf.addr)
	t.mem.Compute(t.cost.Move * uint64(2*moved))
	return true
}

// descend walks to the leaf owning key, recording the path and
// charging like Search does.
func (t *Tree) descend(key core.Key) ([]csbPath, *node) {
	var path []csbPath
	n := t.root
	for !n.leaf {
		t.visit(n)
		idx, _ := t.searchKeys(n, key, t.nlKeyOff)
		t.mem.Access(n.addr + uint64(t.nlPtrOff))
		path = append(path, csbPath{n: n, idx: idx})
		n = n.children[idx]
	}
	t.visit(n)
	return path, n
}

// leafInsertAt inserts into a non-full leaf.
func (t *Tree) leafInsertAt(n *node, pos int, key core.Key, tid core.TID) {
	moved := n.nkeys - pos
	copy(n.keys[pos+1:n.nkeys+1], n.keys[pos:n.nkeys])
	copy(n.tids[pos+1:n.nkeys+1], n.tids[pos:n.nkeys])
	n.keys[pos] = key
	n.tids[pos] = tid
	n.nkeys++
	t.mem.AccessRange(n.addr+uint64(t.leafKeyOff+4*pos), (moved+1)*4)
	t.mem.AccessRange(n.addr+uint64(t.leafTIDOff+4*pos), (moved+1)*4)
	t.mem.Access(n.addr)
	t.mem.Compute(t.cost.Move * uint64(2*moved+2))
}

// splitLeaf splits a full leaf. Because all siblings share one node
// group, the group is reallocated one node larger and every sibling is
// copied into it; the separator then goes into the parent, which may
// split in turn.
func (t *Tree) splitLeaf(path []csbPath, leaf *node, pos int, key core.Key, tid core.TID) {
	right := t.newLeaf()

	// Redistribute the combined pairs across leaf and right.
	total := leaf.nkeys + 1
	half := total / 2
	sk := make([]core.Key, total)
	st := make([]core.TID, total)
	copy(sk, leaf.keys[:pos])
	copy(st, leaf.tids[:pos])
	sk[pos] = key
	st[pos] = tid
	copy(sk[pos+1:], leaf.keys[pos:leaf.nkeys])
	copy(st[pos+1:], leaf.tids[pos:leaf.nkeys])
	copy(leaf.keys, sk[:half])
	copy(leaf.tids, st[:half])
	leaf.nkeys = half
	copy(right.keys, sk[half:])
	copy(right.tids, st[half:])
	right.nkeys = total - half
	right.next = leaf.next
	leaf.next = right

	t.insertIntoParent(path, leaf, right, right.keys[0])
}

// insertIntoParent places `right` immediately after `left` in the
// parent's (reallocated) node group and pushes the separator up,
// splitting ancestors as needed.
func (t *Tree) insertIntoParent(path []csbPath, left, right *node, sep core.Key) {
	for level := len(path) - 1; ; level-- {
		if level < 0 {
			t.growRoot(left, right, sep)
			return
		}
		p := path[level]
		n, idx := p.n, p.idx

		// The child node group grows by one node (Go-level view first;
		// the simulated reallocation is charged below).
		group := append([]*node{}, n.children[:idx+1]...)
		group = append(group, right)
		group = append(group, n.children[idx+1:]...)

		if n.nkeys < t.nlMaxKeys {
			// Reallocate the grown group, copying every sibling.
			t.reallocGroup(group)
			n.children = group
			moved := n.nkeys - idx
			copy(n.keys[idx+1:n.nkeys+1], n.keys[idx:n.nkeys])
			n.keys[idx] = sep
			n.nkeys++
			t.mem.AccessRange(n.addr+uint64(t.nlKeyOff+4*idx), (moved+1)*4)
			t.mem.Access(n.addr)
			t.mem.Compute(t.cost.Move * uint64(moved+1))
			return
		}

		// The parent is full too: split it, dividing the child group
		// into two contiguous groups (two more reallocations).
		total := n.nkeys + 1
		sk := make([]core.Key, total)
		copy(sk, n.keys[:idx])
		sk[idx] = sep
		copy(sk[idx+1:], n.keys[idx:n.nkeys])

		mid := total / 2
		promoted := sk[mid]
		nn := t.newNonLeaf()

		leftGroup := append([]*node{}, group[:mid+1]...)
		rightGroup := append([]*node{}, group[mid+1:]...)
		t.reallocGroup(leftGroup)
		t.reallocGroup(rightGroup)

		copy(n.keys, sk[:mid])
		n.nkeys = mid
		n.children = leftGroup
		copy(nn.keys, sk[mid+1:])
		nn.nkeys = total - mid - 1
		nn.children = rightGroup
		t.mem.AccessRange(n.addr, t.nodeSize)
		t.mem.Compute(t.cost.Move * uint64(total))

		left, right, sep = n, nn, promoted
	}
}

// growRoot replaces the root with a new node over {left, right}; the
// pair becomes a two-node group.
func (t *Tree) growRoot(left, right *node, sep core.Key) {
	group := []*node{left, right}
	t.reallocGroup(group)
	newRoot := t.newNonLeaf()
	newRoot.keys[0] = sep
	newRoot.nkeys = 1
	newRoot.children = group
	newRoot.addr = t.space.Alloc(t.nodeSize)
	t.chargeNodeWrite(newRoot)
	t.root = newRoot
	t.height++
}

// reallocGroup allocates a fresh contiguous region for the group and
// charges copying every member node into it. This is the defining
// CSB+ update cost.
func (t *Tree) reallocGroup(group []*node) {
	base := t.space.Alloc(t.nodeSize * len(group))
	for i, c := range group {
		c.addr = base + uint64(i*t.nodeSize)
		t.mem.AccessRange(c.addr, t.nodeSize)
		t.mem.Compute(t.cost.Move * uint64(2*c.nkeys+2))
	}
}

package csbtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

func TestInsertFromEmpty(t *testing.T) {
	for _, cfg := range []Config{{Width: 1}, {Width: 8, Prefetch: true}} {
		tr := MustNew(cfg)
		r := rand.New(rand.NewSource(1))
		const n = 5000
		keys := make([]core.Key, n)
		for i := range keys {
			keys[i] = core.Key(8 * (i + 1))
		}
		r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			if !tr.Insert(k, core.TID(k)) {
				t.Fatalf("Insert(%d) reported duplicate", k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d", tr.Len())
		}
		for _, k := range keys {
			tid, ok := tr.Search(k)
			if !ok || tid != core.TID(k) {
				t.Fatalf("Search(%d) = %d,%v", k, tid, ok)
			}
		}
	}
}

func TestInsertDuplicateUpdates(t *testing.T) {
	tr := MustNew(Config{Width: 1})
	tr.Insert(10, 1)
	if tr.Insert(10, 2) {
		t.Fatal("duplicate insert reported new")
	}
	if tid, _ := tr.Search(10); tid != 2 {
		t.Fatalf("tid = %d", tid)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertIntoBulkloaded(t *testing.T) {
	tr := MustNew(Config{Width: 1})
	ps := pairs(10000)
	if err := tr.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	var extra []core.Key
	for i := 0; i < 5000; i++ {
		extra = append(extra, core.Key(8*(r.Intn(10000)+1)+1+r.Intn(7)))
	}
	for _, k := range extra {
		tr.Insert(k, 1)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if _, ok := tr.Search(p.Key); !ok {
			t.Fatalf("bulkloaded key %d lost", p.Key)
		}
	}
	for _, k := range extra {
		if _, ok := tr.Search(k); !ok {
			t.Fatalf("inserted key %d lost", k)
		}
	}
}

func TestDeleteLazy(t *testing.T) {
	tr := MustNew(Config{Width: 1})
	ps := pairs(3000)
	if err := tr.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	keys := make([]core.Key, len(ps))
	for i, p := range ps {
		keys[i] = p.Key
	}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if tr.Delete(k) {
			t.Fatalf("Delete(%d) twice succeeded", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reinsertion into the emptied (lazy) structure works.
	for _, k := range keys[:500] {
		tr.Insert(k, core.TID(k))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:500] {
		if _, ok := tr.Search(k); !ok {
			t.Fatalf("reinserted key %d lost", k)
		}
	}
}

// TestMixedAgainstModel drives CSB+ updates against a map model.
func TestMixedAgainstModel(t *testing.T) {
	tr := MustNew(Config{Width: 1})
	model := map[core.Key]core.TID{}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		k := core.Key(r.Intn(4000) + 1)
		switch r.Intn(4) {
		case 0, 1:
			tid := core.TID(r.Uint32())
			_, existed := model[k]
			if tr.Insert(k, tid) == existed {
				t.Fatalf("op %d: Insert mismatch", i)
			}
			model[k] = tid
		case 2:
			_, existed := model[k]
			if tr.Delete(k) != existed {
				t.Fatalf("op %d: Delete mismatch", i)
			}
			delete(model, k)
		case 3:
			tid, ok := tr.Search(k)
			wtid, wok := model[k]
			if ok != wok || (ok && tid != wtid) {
				t.Fatalf("op %d: Search mismatch", i)
			}
		}
		if i%4000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
	}
}

// TestQuickInsertSearch is a property test over arbitrary key sets.
func TestQuickInsertSearch(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := MustNew(Config{Width: 2, Prefetch: true})
		model := map[core.Key]core.TID{}
		for _, v := range raw {
			k := core.Key(v%2000) + 1
			tr.Insert(k, core.TID(v))
			model[k] = core.TID(v)
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := tr.Search(k)
			if !ok || got != want {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCSBInsertSlowerThanBPlus reproduces the claim the paper quotes
// from Rao and Ross: CSB+ insertion is noticeably slower than B+
// insertion, because splits reallocate and copy whole node groups.
func TestCSBInsertSlowerThanBPlus(t *testing.T) {
	const n = 200000
	const ops = 5000
	ps := pairs(n)

	csb := MustNew(Config{Width: 1})
	if err := csb.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}
	bp := core.MustNew(core.Config{Width: 1, Mem: memsys.Default()})
	if err := bp.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(5))
	keys := make([]core.Key, ops)
	for i := range keys {
		keys[i] = core.Key(8*(r.Intn(n)+1) + 1 + r.Intn(7))
	}

	cStart := csb.Mem().Now()
	for _, k := range keys {
		csb.Mem().FlushCaches()
		csb.Insert(k, 1)
	}
	cTime := csb.Mem().Now() - cStart

	bStart := bp.Mem().Now()
	for _, k := range keys {
		bp.Mem().FlushCaches()
		bp.Insert(k, 1)
	}
	bTime := bp.Mem().Now() - bStart

	if cTime <= bTime {
		t.Errorf("CSB+ insert (%d) should be slower than B+ (%d)", cTime, bTime)
	}
	if float64(cTime) > 3.0*float64(bTime) {
		t.Errorf("CSB+ insert %.2fx slower than B+: implausibly high (Rao-Ross: ~1.25x)",
			float64(cTime)/float64(bTime))
	}
}

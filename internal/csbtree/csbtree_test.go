package csbtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pbtree/internal/core"
	"pbtree/internal/memsys"
)

func pairs(n int) []core.Pair {
	ps := make([]core.Pair, n)
	for i := range ps {
		ps[i] = core.Pair{Key: core.Key(8 * (i + 1)), TID: core.TID(i + 1)}
	}
	return ps
}

// TestNodeCapacitiesMatchPaper pins section 4.1.2: a CSB+ non-leaf
// node has a keynum field, 14 keys and one childptr.
func TestNodeCapacitiesMatchPaper(t *testing.T) {
	tr := MustNew(Config{Width: 1})
	if tr.nlMaxKeys != 14 {
		t.Errorf("CSB+ non-leaf keys = %d, want 14", tr.nlMaxKeys)
	}
	if tr.leafMax != 7 {
		t.Errorf("CSB+ leaf pairs = %d, want 7", tr.leafMax)
	}
	p8 := MustNew(Config{Width: 8, Prefetch: true})
	if p8.nlMaxKeys != 126 {
		t.Errorf("p8CSB+ non-leaf keys = %d, want 126", p8.nlMaxKeys)
	}
	if p8.MaxFanout() != 127 {
		t.Errorf("p8CSB+ fanout = %d, want 127", p8.MaxFanout())
	}
}

func TestNames(t *testing.T) {
	if got := MustNew(Config{Width: 1}).Name(); got != "CSB+" {
		t.Errorf("name = %q", got)
	}
	if got := MustNew(Config{Width: 8, Prefetch: true}).Name(); got != "p8CSB+" {
		t.Errorf("name = %q", got)
	}
}

func TestBulkloadSearch(t *testing.T) {
	for _, cfg := range []Config{{Width: 1}, {Width: 8, Prefetch: true}} {
		tr := MustNew(cfg)
		ps := pairs(20000)
		if err := tr.Bulkload(ps, 1.0); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, p := range ps {
			tid, ok := tr.Search(p.Key)
			if !ok || tid != p.TID {
				t.Fatalf("%s: Search(%d) = %d,%v", tr.Name(), p.Key, tid, ok)
			}
		}
		for _, k := range []core.Key{0, 3, 9, 8*20000 + 4} {
			if _, ok := tr.Search(k); ok {
				t.Fatalf("%s: phantom key %d", tr.Name(), k)
			}
		}
	}
}

func TestBulkloadFillFactors(t *testing.T) {
	for _, fill := range []float64{0.6, 0.75, 0.9, 1.0} {
		tr := MustNew(Config{Width: 1})
		ps := pairs(5000)
		if err := tr.Bulkload(ps, fill); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("fill %v: %v", fill, err)
		}
		for _, p := range ps {
			if _, ok := tr.Search(p.Key); !ok {
				t.Fatalf("fill %v: key %d lost", fill, p.Key)
			}
		}
	}
}

func TestBulkloadErrors(t *testing.T) {
	tr := MustNew(Config{})
	if err := tr.Bulkload(pairs(5), 0); err == nil {
		t.Error("fill 0 accepted")
	}
	if err := tr.Bulkload([]core.Pair{{Key: 2}, {Key: 1}}, 1); err == nil {
		t.Error("unsorted accepted")
	}
	if err := tr.Bulkload(nil, 1); err != nil {
		t.Error("empty bulkload should succeed")
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Error("empty tree shape wrong")
	}
	if _, err := New(Config{Width: -3}); err == nil {
		t.Error("negative width accepted")
	}
}

// TestHeightBelowBPlusTree pins the motivation: the doubled fanout
// makes CSB+ trees shorter than B+ trees of the same size.
func TestHeightBelowBPlusTree(t *testing.T) {
	ps := pairs(100000)
	b := core.MustNew(core.Config{Width: 1, Mem: memsys.Default()})
	if err := b.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}
	c := MustNew(Config{Width: 1})
	if err := c.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}
	if c.Height() >= b.Height() {
		t.Errorf("CSB+ height %d not below B+ height %d", c.Height(), b.Height())
	}
}

// TestPrefetchSpeedsUpSearch: p8CSB+ must beat CSB+ on cold searches.
func TestPrefetchSpeedsUpSearch(t *testing.T) {
	ps := pairs(200000)
	run := func(cfg Config) uint64 {
		tr := MustNew(cfg)
		if err := tr.Bulkload(ps, 1.0); err != nil {
			t.Fatal(err)
		}
		tr.Mem().ResetStats()
		r := rand.New(rand.NewSource(1))
		start := tr.Mem().Now()
		for i := 0; i < 2000; i++ {
			tr.Mem().FlushCaches()
			tr.Search(core.Key(8 * (r.Intn(len(ps)) + 1)))
		}
		return tr.Mem().Now() - start
	}
	tc := run(Config{Width: 1})
	tp := run(Config{Width: 8, Prefetch: true})
	if tp >= tc {
		t.Errorf("p8CSB+ cold search (%d) not faster than CSB+ (%d)", tp, tc)
	}
}

// TestCSBBeatsBPlusOnColdSearch pins the Figure 7(b) ordering.
func TestCSBBeatsBPlusOnColdSearch(t *testing.T) {
	ps := pairs(200000)
	c := MustNew(Config{Width: 1})
	if err := c.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}
	b := core.MustNew(core.Config{Width: 1, Mem: memsys.Default()})
	if err := b.Bulkload(ps, 1.0); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	keys := make([]core.Key, 2000)
	for i := range keys {
		keys[i] = core.Key(8 * (r.Intn(len(ps)) + 1))
	}
	cStart := c.Mem().Now()
	for _, k := range keys {
		c.Mem().FlushCaches()
		c.Search(k)
	}
	cTime := c.Mem().Now() - cStart
	bStart := b.Mem().Now()
	for _, k := range keys {
		b.Mem().FlushCaches()
		b.Search(k)
	}
	bTime := b.Mem().Now() - bStart
	if cTime >= bTime {
		t.Errorf("CSB+ cold search (%d) not faster than B+ (%d)", cTime, bTime)
	}
}

// TestQuickSearchAgainstModel: arbitrary bulkloads answer arbitrary
// lookups correctly.
func TestQuickSearchAgainstModel(t *testing.T) {
	f := func(raw []uint16, probes []uint16) bool {
		set := map[core.Key]core.TID{}
		for _, v := range raw {
			set[core.Key(v)+1] = core.TID(v)
		}
		var ps []core.Pair
		for k, tid := range set {
			ps = append(ps, core.Pair{Key: k, TID: tid})
		}
		// Sort.
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j].Key < ps[j-1].Key; j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
		tr := MustNew(Config{Width: 8, Prefetch: true})
		if tr.Bulkload(ps, 0.9) != nil {
			return false
		}
		for _, p := range probes {
			k := core.Key(p) + 1
			tid, ok := tr.Search(k)
			wtid, wok := set[k]
			if ok != wok || (ok && tid != wtid) {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

#!/bin/sh
# Serving benchmark: boot pbtree-server, run the same mixed load twice
# at an equal connection count — sequential (window=1, one round trip
# at a time per connection) and pipelined (window=16 outstanding calls
# per connection over protocol v2) — and write both loadgen JSON
# reports to the file named by $1 (default BENCH_serve.json) as
# {"sequential": ..., "pipelined": ..., "overhead_off": ...,
# "overhead_on": ...}.
#
# The server runs with lifecycle stage tracing on (the default), so
# both reports carry the server_stages attribution tables: per op
# class, how the server-side time splits across decode / admission /
# batch_wait / queue_wait / apply / exec / resp_queue / write. The
# pipelined-vs-sequential share shift names the stage behind the
# pipelining p99 inflation (EXPERIMENTS.md).
#
# The overhead_off/overhead_on pair is the tracing-cost gate: the PR 6
# BENCH_matrix oltp-point cell (conns 4, window 8, zipf point reads)
# re-run against a fresh server with -stages=false and again with the
# default tracing on. The off run must stay within 2% of the on run
# (and of the committed BENCH_matrix baseline on the same hardware).
set -eu

out=${1:-BENCH_serve.json}
tmp=$(mktemp -d)
port=$((17000 + $$ % 1000))
addr="127.0.0.1:$port"
keys=1000000
conns=4
mix="-skew zipf -get 70 -mget 15 -scan 5 -put 10"
oltp_keys=200000

cleanup() {
    [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbtree-server" ./cmd/pbtree-server
go build -o "$tmp/pbtree-loadgen" ./cmd/pbtree-loadgen

wait_reachable() {
    nkeys=$1
    ok=0
    for _ in $(seq 1 50); do
        if "$tmp/pbtree-loadgen" -addr "$addr" -keys "$nkeys" -conns 1 \
            -duration 100ms >/dev/null 2>&1; then
            ok=1
            break
        fi
        kill -0 "$srv" 2>/dev/null || { echo "bench-serve: server died:"; cat "$tmp/server.log"; exit 1; }
        sleep 0.2
    done
    [ "$ok" = 1 ] || { echo "bench-serve: server never became reachable"; cat "$tmp/server.log"; exit 1; }
}

stop_server() {
    kill -TERM "$srv"
    wait "$srv" || true
    srv=
}

"$tmp/pbtree-server" -addr "$addr" -keys "$keys" \
    >"$tmp/server.log" 2>&1 &
srv=$!
wait_reachable "$keys"

echo "bench-serve: sequential (window=1)"
# shellcheck disable=SC2086
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns "$conns" \
    -window 1 -duration 5s -stage-table $mix >"$tmp/sequential.json"
echo "bench-serve: pipelined (window=16)"
# shellcheck disable=SC2086
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns "$conns" \
    -window 16 -duration 5s -stage-table $mix >"$tmp/pipelined.json"
stop_server

# Tracing-overhead gate: the BENCH_matrix oltp-point cell against a
# fresh server with stage tracing off, then on.
for mode in off on; do
    if [ "$mode" = off ]; then flags="-stages=false"; else flags=""; fi
    # shellcheck disable=SC2086
    "$tmp/pbtree-server" -addr "$addr" -keys "$oltp_keys" $flags \
        >"$tmp/server.log" 2>&1 &
    srv=$!
    wait_reachable "$oltp_keys"
    echo "bench-serve: overhead gate, tracing $mode"
    "$tmp/pbtree-loadgen" -addr "$addr" -keys "$oltp_keys" -conns 4 \
        -window 8 -duration 3s -scenario oltp-point >"$tmp/overhead_$mode.json"
    stop_server
done

{
    printf '{\n"sequential":\n'
    cat "$tmp/sequential.json"
    printf ',\n"pipelined":\n'
    cat "$tmp/pipelined.json"
    printf ',\n"overhead_off":\n'
    cat "$tmp/overhead_off.json"
    printf ',\n"overhead_on":\n'
    cat "$tmp/overhead_on.json"
    printf '}\n'
} >"$out"

off=$(sed -n 's/^  "ops_per_sec": \([0-9.]*\),$/\1/p' "$tmp/overhead_off.json")
on=$(sed -n 's/^  "ops_per_sec": \([0-9.]*\),$/\1/p' "$tmp/overhead_on.json")
echo "bench-serve: oltp-point ops/sec: tracing off $off, on $on"
echo "bench-serve: wrote $out"

#!/bin/sh
# Serving benchmark: boot pbtree-server, run the same mixed load twice
# at an equal connection count — sequential (window=1, one round trip
# at a time per connection) and pipelined (window=16 outstanding calls
# per connection over protocol v2) — and write both loadgen JSON
# reports to the file named by $1 (default BENCH_serve.json) as
# {"sequential": ..., "pipelined": ...}.
set -eu

out=${1:-BENCH_serve.json}
tmp=$(mktemp -d)
port=$((17000 + $$ % 1000))
addr="127.0.0.1:$port"
keys=1000000
conns=4
mix="-skew zipf -get 70 -mget 15 -scan 5 -put 10"

cleanup() {
    [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbtree-server" ./cmd/pbtree-server
go build -o "$tmp/pbtree-loadgen" ./cmd/pbtree-loadgen

"$tmp/pbtree-server" -addr "$addr" -keys "$keys" \
    >"$tmp/server.log" 2>&1 &
srv=$!

ok=0
for _ in $(seq 1 50); do
    if "$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns 1 \
        -duration 100ms >/dev/null 2>&1; then
        ok=1
        break
    fi
    kill -0 "$srv" 2>/dev/null || { echo "bench-serve: server died:"; cat "$tmp/server.log"; exit 1; }
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "bench-serve: server never became reachable"; cat "$tmp/server.log"; exit 1; }

# shellcheck disable=SC2086
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns "$conns" \
    -window 1 -duration 5s $mix >"$tmp/sequential.json"
# shellcheck disable=SC2086
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns "$conns" \
    -window 16 -duration 5s $mix >"$tmp/pipelined.json"

{
    printf '{\n"sequential":\n'
    cat "$tmp/sequential.json"
    printf ',\n"pipelined":\n'
    cat "$tmp/pipelined.json"
    printf '}\n'
} >"$out"

kill -TERM "$srv"
wait "$srv" || true
srv=
echo "bench-serve: wrote $out"

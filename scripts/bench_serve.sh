#!/bin/sh
# Serving benchmark: boot pbtree-server, run the same mixed load twice
# at an equal connection count — sequential (window=1, one round trip
# at a time per connection) and pipelined (window=16 outstanding calls
# per connection over protocol v2) — and write both loadgen JSON
# reports to the file named by $1 (default BENCH_serve.json) as
# {"sequential": ..., "pipelined": ..., "overhead_off": ...,
# "overhead_on": ...}.
#
# The server runs with lifecycle stage tracing on (the default), so
# both reports carry the server_stages attribution tables: per op
# class, how the server-side time splits across decode / admission /
# batch_wait / queue_wait / apply / exec / resp_queue / write. The
# pipelined-vs-sequential share shift names the stage behind the
# pipelining p99 inflation (EXPERIMENTS.md).
#
# The overhead_off/overhead_on pair is the tracing-cost gate: the PR 6
# BENCH_matrix oltp-point cell (conns 4, window 8, zipf point reads)
# re-run against a fresh server with -stages=false and again with the
# default tracing on. The off run must stay within 2% of the on run
# (and of the committed BENCH_matrix baseline on the same hardware).
#
# The scale_<plane>_<conns> grid is the connection-scaling sweep
# (EXPERIMENTS.md): the same mixed load at 64/256/1024 connections
# against the worker-pool data plane and the legacy
# goroutine-per-request plane (-data-plane, DESIGN.md §15). The
# comparison to read off is the admission-stage share in
# server_stages as connections grow: the goroutine plane's execution
# concurrency is conns x window (scheduler queueing, filed under
# admission), the pool plane's is -pool workers.
#
# The streaming run drives the olap-stream scenario (70% streaming
# scans over SCANOPEN/SCANNEXT cursors) against the pool plane.
#
# The single_node_reads/replica_set_reads pair is the read-scaling
# measurement (DESIGN.md §13): the same GET-only Zipf load at the same
# total connection count against one server, then against a
# 1-primary+2-replica set with the connections round-robined across
# all three (-replicas), after the replicas have caught up. The
# connection count is chosen to saturate a single node, so the pair
# quantifies what read replicas buy. Caveat: on a single-core host the
# set cannot exceed one node (all processes share the core); the pair
# then measures the fan-out overhead instead, and the headroom only
# materializes with real CPUs per replica.
set -eu

out=${1:-BENCH_serve.json}
tmp=$(mktemp -d)
port=$((17000 + $$ % 1000))
addr="127.0.0.1:$port"
keys=1000000
conns=4
mix="-skew zipf -get 70 -mget 15 -scan 5 -put 10"
oltp_keys=200000

cleanup() {
    [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbtree-server" ./cmd/pbtree-server
go build -o "$tmp/pbtree-loadgen" ./cmd/pbtree-loadgen

wait_reachable() {
    nkeys=$1
    ok=0
    for _ in $(seq 1 50); do
        if "$tmp/pbtree-loadgen" -addr "$addr" -keys "$nkeys" -conns 1 \
            -duration 100ms >/dev/null 2>&1; then
            ok=1
            break
        fi
        kill -0 "$srv" 2>/dev/null || { echo "bench-serve: server died:"; cat "$tmp/server.log"; exit 1; }
        sleep 0.2
    done
    [ "$ok" = 1 ] || { echo "bench-serve: server never became reachable"; cat "$tmp/server.log"; exit 1; }
}

stop_server() {
    kill -TERM "$srv"
    wait "$srv" || true
    srv=
}

"$tmp/pbtree-server" -addr "$addr" -keys "$keys" \
    >"$tmp/server.log" 2>&1 &
srv=$!
wait_reachable "$keys"

echo "bench-serve: sequential (window=1)"
# shellcheck disable=SC2086
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns "$conns" \
    -window 1 -duration 5s -stage-table $mix >"$tmp/sequential.json"
echo "bench-serve: pipelined (window=16)"
# shellcheck disable=SC2086
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns "$conns" \
    -window 16 -duration 5s -stage-table $mix >"$tmp/pipelined.json"
stop_server

# Tracing-overhead gate: the BENCH_matrix oltp-point cell against a
# fresh server with stage tracing off, then on.
for mode in off on; do
    if [ "$mode" = off ]; then flags="-stages=false"; else flags=""; fi
    # shellcheck disable=SC2086
    "$tmp/pbtree-server" -addr "$addr" -keys "$oltp_keys" $flags \
        >"$tmp/server.log" 2>&1 &
    srv=$!
    wait_reachable "$oltp_keys"
    echo "bench-serve: overhead gate, tracing $mode"
    "$tmp/pbtree-loadgen" -addr "$addr" -keys "$oltp_keys" -conns 4 \
        -window 8 -duration 3s -scenario oltp-point >"$tmp/overhead_$mode.json"
    stop_server
done

# Connection scaling: the mixed load at growing connection counts
# against each data plane. Window 4 keeps per-connection read-ahead
# modest so the sweep varies exactly one thing: how many connections
# the plane must multiplex.
for plane in pool goroutine; do
    "$tmp/pbtree-server" -addr "$addr" -keys "$oltp_keys" \
        -data-plane "$plane" >"$tmp/server.log" 2>&1 &
    srv=$!
    wait_reachable "$oltp_keys"
    for nconns in 64 256 1024; do
        echo "bench-serve: connection scaling, $plane plane, $nconns conns"
        # shellcheck disable=SC2086
        "$tmp/pbtree-loadgen" -addr "$addr" -keys "$oltp_keys" \
            -conns "$nconns" -window 4 -duration 3s $mix \
            >"$tmp/scale_${plane}_${nconns}.json"
    done
    stop_server
done

# Streaming scan: the olap-stream scenario (SCANOPEN/SCANNEXT
# cursors) against the default pool plane.
"$tmp/pbtree-server" -addr "$addr" -keys "$oltp_keys" >"$tmp/server.log" 2>&1 &
srv=$!
wait_reachable "$oltp_keys"
echo "bench-serve: streaming scan (olap-stream)"
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$oltp_keys" -conns 4 \
    -window 8 -duration 3s -scenario olap-stream >"$tmp/streaming.json"
stop_server

# Read scaling: single node, then 1 primary + 2 replicas with the
# same total connection count spread across the set. 24 connections
# saturate a single node on the reference hardware.
repl_keys=200000
read_load="-keys $repl_keys -conns 24 -window 4 -duration 5s -skew zipf -get 100"

"$tmp/pbtree-server" -addr "$addr" -keys "$repl_keys" >"$tmp/server.log" 2>&1 &
srv=$!
wait_reachable "$repl_keys"
echo "bench-serve: read scaling, single node"
# shellcheck disable=SC2086
"$tmp/pbtree-loadgen" -addr "$addr" $read_load >"$tmp/single_node_reads.json"
stop_server

r1port=$((port + 1000)); r1addr="127.0.0.1:$r1port"
r2port=$((port + 2000)); r2addr="127.0.0.1:$r2port"
"$tmp/pbtree-server" -addr "$addr" -keys "$repl_keys" \
    -data-dir "$tmp/primary" -fsync always >"$tmp/server.log" 2>&1 &
srv=$!
wait_reachable "$repl_keys"
"$tmp/pbtree-server" -addr "$r1addr" -data-dir "$tmp/replica1" \
    -fsync always -replica-of "$addr" -repl-poll 5ms >"$tmp/replica1.log" 2>&1 &
r1=$!
"$tmp/pbtree-server" -addr "$r2addr" -data-dir "$tmp/replica2" \
    -fsync always -replica-of "$addr" -repl-poll 5ms >"$tmp/replica2.log" 2>&1 &
r2=$!
for raddr in "$r1addr" "$r2addr"; do
    ok=0
    for _ in $(seq 1 100); do
        if "$tmp/pbtree-loadgen" -addr "$raddr" -keys "$repl_keys" -conns 1 \
            -duration 200ms -get 100 >"$tmp/replica_sweep.json" 2>/dev/null \
            && [ "$(sed -n 's/^  "not_found": \([0-9]*\),$/\1/p' "$tmp/replica_sweep.json")" = 0 ]; then
            ok=1
            break
        fi
        sleep 0.2
    done
    [ "$ok" = 1 ] || { echo "bench-serve: replica $raddr never caught up"; cat "$tmp/replica1.log" "$tmp/replica2.log"; exit 1; }
done
echo "bench-serve: read scaling, 1 primary + 2 replicas"
# shellcheck disable=SC2086
"$tmp/pbtree-loadgen" -addr "$addr" -replicas "$r1addr,$r2addr" $read_load \
    >"$tmp/replica_set_reads.json"
kill -TERM "$r1" "$r2" 2>/dev/null || true
wait "$r1" "$r2" 2>/dev/null || true
stop_server

{
    printf '{\n"sequential":\n'
    cat "$tmp/sequential.json"
    printf ',\n"pipelined":\n'
    cat "$tmp/pipelined.json"
    printf ',\n"overhead_off":\n'
    cat "$tmp/overhead_off.json"
    printf ',\n"overhead_on":\n'
    cat "$tmp/overhead_on.json"
    for plane in pool goroutine; do
        for nconns in 64 256 1024; do
            printf ',\n"scale_%s_%s":\n' "$plane" "$nconns"
            cat "$tmp/scale_${plane}_${nconns}.json"
        done
    done
    printf ',\n"streaming":\n'
    cat "$tmp/streaming.json"
    printf ',\n"single_node_reads":\n'
    cat "$tmp/single_node_reads.json"
    printf ',\n"replica_set_reads":\n'
    cat "$tmp/replica_set_reads.json"
    printf '}\n'
} >"$out"

off=$(sed -n 's/^  "ops_per_sec": \([0-9.]*\),$/\1/p' "$tmp/overhead_off.json")
on=$(sed -n 's/^  "ops_per_sec": \([0-9.]*\),$/\1/p' "$tmp/overhead_on.json")
echo "bench-serve: oltp-point ops/sec: tracing off $off, on $on"
echo "bench-serve: wrote $out"

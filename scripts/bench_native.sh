#!/bin/sh
# Native prefetch benchmark: the PR-9 hardware matrix. Measures the
# oltp-point serving scenario against pbtree-server across the four
# combinations of hardware prefetch x branchless intra-node search,
# then appends pbench's in-process native report (ns/op per lookup and
# prefetch instructions issued per op) for the same four combos.
# Writes the file named by $1 (default BENCH_native.json) as
# {"server": {"<combo>": <loadgen report>, ...}, "inprocess": <RunSet>}.
#
# Tunables (env): KEYS (preloaded key space, default 1000000), DURATION
# (per combo, default 5s), CONNS (default 4), WINDOW (default 8), SCALE
# (pbench -native scale, default 0.1). CI runs a short DURATION pass as
# a smoke gate; EXPERIMENTS.md records a full run.
set -eu

out=${1:-BENCH_native.json}
keys="${KEYS:-1000000}"
duration="${DURATION:-5s}"
conns="${CONNS:-4}"
window="${WINDOW:-8}"
scale="${SCALE:-0.1}"
combos="base hw-prefetch branchless hw-prefetch+branchless"
tmp=$(mktemp -d)
port=$((19000 + $$ % 1000))
addr="127.0.0.1:$port"

cleanup() {
    [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbtree-server" ./cmd/pbtree-server
go build -o "$tmp/pbtree-loadgen" ./cmd/pbtree-loadgen
go build -o "$tmp/pbench" ./cmd/pbench

wait_reachable() {
    ok=0
    for _ in $(seq 1 50); do
        if "$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns 1 \
            -duration 100ms >/dev/null 2>&1; then
            ok=1
            break
        fi
        kill -0 "$srv" 2>/dev/null || { echo "bench-native: server died:"; cat "$tmp/server.log"; exit 1; }
        sleep 0.2
    done
    [ "$ok" = 1 ] || { echo "bench-native: server never became reachable"; cat "$tmp/server.log"; exit 1; }
}

combo_flags() {
    case "$1" in
    base) echo "" ;;
    hw-prefetch) echo "-hw-prefetch" ;;
    branchless) echo "-branchless" ;;
    hw-prefetch+branchless) echo "-hw-prefetch -branchless" ;;
    esac
}

for combo in $combos; do
    # shellcheck disable=SC2086 # flag list is intentionally word-split
    "$tmp/pbtree-server" -addr "$addr" -keys "$keys" $(combo_flags "$combo") \
        >"$tmp/server.log" 2>&1 &
    srv=$!
    wait_reachable
    echo "bench-native: oltp-point / $combo ($duration)"
    "$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns "$conns" \
        -window "$window" -duration "$duration" -scenario oltp-point \
        >"$tmp/$combo.json"
    kill -TERM "$srv"
    wait "$srv" || true
    srv=
done

echo "bench-native: in-process pbench -native (scale $scale)"
"$tmp/pbench" -fig none -native -json -scale "$scale" >"$tmp/inprocess.json"

{
    printf '{\n"server": {'
    sep=
    for combo in $combos; do
        printf '%s\n"%s":\n' "$sep" "$combo"
        sep=,
        cat "$tmp/$combo.json"
    done
    printf '},\n"inprocess":\n'
    cat "$tmp/inprocess.json"
    printf '}\n'
} >"$out"

# Sanity: every combo did work, and the in-process report measured all
# four variants.
for combo in $combos; do
    ops=$(sed -n 's/^  "ops": \([0-9]*\),$/\1/p' "$tmp/$combo.json")
    [ -n "$ops" ] && [ "$ops" -gt 0 ] \
        || { echo "bench-native: $combo completed no operations"; exit 1; }
done
variants=$(grep -c '"ns_per_op"' "$tmp/inprocess.json" || true)
[ "$variants" = 4 ] || { echo "bench-native: in-process report has $variants variants, want 4"; exit 1; }

base=$(sed -n 's/^  "ops_per_sec": \([0-9.]*\),$/\1/p' "$tmp/base.json")
both=$(sed -n 's/^  "ops_per_sec": \([0-9.]*\),$/\1/p' "$tmp/hw-prefetch+branchless.json")
echo "bench-native: oltp-point ops/sec: base $base, hw-prefetch+branchless $both"
echo "bench-native: wrote $out"

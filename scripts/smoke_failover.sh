#!/bin/sh
# Failover smoke test (DESIGN.md §13): boot a synchronous primary and
# a read replica following it, drive put-heavy load, kill -9 the
# primary mid-load, promote the replica over the admin plane, and
# assert that (a) the replica was really following (/replz role),
# (b) promotion answers with the primary role and a higher epoch,
# (c) the whole acked key space is served by the new primary
# (not_found == 0 under a GET-only sweep — synchronous replication
# means nothing acked was lost), and (d) the promoted server accepts
# writes and still drains cleanly.
#
# BACKEND selects the storage engine under test (pbtree or lsm,
# default pbtree); replication ships WAL frames, so it is
# engine-agnostic by construction — this script is where we prove it.
set -eu

backend="${BACKEND:-pbtree}"
tmp=$(mktemp -d)
pport=$((21000 + $$ % 1000))
fport=$((22000 + $$ % 1000))
fadmin_port=$((23000 + $$ % 1000))
paddr="127.0.0.1:$pport"
faddr="127.0.0.1:$fport"
fadmin="127.0.0.1:$fadmin_port"
keys=20000

cleanup() {
    [ -n "${psrv:-}" ] && kill -9 "$psrv" 2>/dev/null || true
    [ -n "${fsrv:-}" ] && kill -9 "$fsrv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbtree-server" ./cmd/pbtree-server
go build -o "$tmp/pbtree-loadgen" ./cmd/pbtree-loadgen
go build -o "$tmp/httpget" ./scripts/httpget

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "http://$fadmin$1"
    else
        "$tmp/httpget" "http://$fadmin$1"
    fi
}
promote() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf -X POST "http://$fadmin$1"
    else
        "$tmp/httpget" -post "http://$fadmin$1"
    fi
}

# Primary: durable, synchronous replication (a write acks only after
# the follower applied it — that is what makes the post-failover
# keyspace claim checkable).
"$tmp/pbtree-server" -addr "$paddr" -keys "$keys" -shards 4 \
    -backend "$backend" -data-dir "$tmp/primary" -fsync always \
    -repl-sync -repl-sync-timeout 10s >"$tmp/primary.log" 2>&1 &
psrv=$!

# Follower: same backend, its own directory, pulling from the primary.
"$tmp/pbtree-server" -addr "$faddr" -admin "$fadmin" -shards 4 \
    -backend "$backend" -data-dir "$tmp/follower" -fsync always \
    -replica-of "$paddr" -repl-poll 5ms >"$tmp/follower.log" 2>&1 &
fsrv=$!

# The follower's admin plane is up once /replz answers with the
# replica role.
ok=0
for _ in $(seq 1 50); do
    if fetch /replz >"$tmp/replz" 2>/dev/null && grep -q '"role": "replica"' "$tmp/replz"; then
        ok=1
        break
    fi
    kill -0 "$fsrv" 2>/dev/null || { echo "smoke-failover: follower died:"; cat "$tmp/follower.log"; exit 1; }
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "smoke-failover: follower never reported the replica role"; cat "$tmp/follower.log"; exit 1; }
grep -q "following primary" "$tmp/follower.log" \
    || { echo "smoke-failover: follower not following:"; cat "$tmp/follower.log"; exit 1; }

# Synchronous writes flow once the follower has caught up (the seeded
# key space ships as a checkpoint first); poll with a tiny put burst.
ok=0
for _ in $(seq 1 50); do
    if "$tmp/pbtree-loadgen" -addr "$paddr" -keys "$keys" -conns 1 \
        -duration 200ms -put 100 -timeout 15s >/dev/null 2>&1; then
        ok=1
        break
    fi
    kill -0 "$psrv" 2>/dev/null || { echo "smoke-failover: primary died:"; cat "$tmp/primary.log"; exit 1; }
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "smoke-failover: synchronous writes never started flowing"; cat "$tmp/primary.log"; cat "$tmp/follower.log"; exit 1; }

# Put-heavy load, then a hard kill mid-load: the moment of failover.
"$tmp/pbtree-loadgen" -addr "$paddr" -keys "$keys" -conns 4 \
    -duration 5s -put 90 -get 10 -timeout 15s >/dev/null 2>&1 &
load=$!
sleep 1
kill -9 "$psrv"
psrv=
wait "$load" 2>/dev/null || true  # loadgen dies with the connection; expected

# Promote the follower over the admin plane — the failover runbook.
promote /promote >"$tmp/promote.json" \
    || { echo "smoke-failover: promotion failed:"; cat "$tmp/promote.json" 2>/dev/null; cat "$tmp/follower.log"; exit 1; }
grep -q '"role": "primary"' "$tmp/promote.json" \
    || { echo "smoke-failover: promotion did not yield the primary role:"; cat "$tmp/promote.json"; exit 1; }
grep -q '"epoch": 2' "$tmp/promote.json" \
    || { echo "smoke-failover: promotion did not raise the epoch:"; cat "$tmp/promote.json"; exit 1; }

# Every key the old primary ever acknowledged must be served by the
# new one. The preload plus put-only overwrites keep the key space
# fixed, so a GET-only sweep with not_found == 0 is exactly that claim
# (synchronous replication: an ack implied follower durability).
"$tmp/pbtree-loadgen" -addr "$faddr" -keys "$keys" -conns 2 \
    -duration 1s -get 100 >"$tmp/verify.json"
ops=$(sed -n 's/^  "ops": \([0-9]*\),$/\1/p' "$tmp/verify.json")
notfound=$(sed -n 's/^  "not_found": \([0-9]*\),$/\1/p' "$tmp/verify.json")
[ -n "$ops" ] && [ "$ops" -gt 0 ] \
    || { echo "smoke-failover: verification sweep did nothing"; exit 1; }
[ "$notfound" = 0 ] \
    || { echo "smoke-failover: $notfound acked keys missing after failover"; exit 1; }

# The new primary accepts writes.
"$tmp/pbtree-loadgen" -addr "$faddr" -keys "$keys" -conns 1 \
    -duration 300ms -put 100 >/dev/null 2>&1 \
    || { echo "smoke-failover: new primary rejects writes"; cat "$tmp/follower.log"; exit 1; }

# And still drains cleanly.
kill -TERM "$fsrv"
wait "$fsrv" || { echo "smoke-failover: promoted server exited nonzero:"; cat "$tmp/follower.log"; exit 1; }
fsrv=
grep -q "drained cleanly" "$tmp/follower.log" \
    || { echo "smoke-failover: no clean drain after promotion:"; cat "$tmp/follower.log"; exit 1; }

echo "smoke-failover: OK (backend $backend, kill -9 primary survived, promoted at epoch 2, $ops GETs verified, 0 missing)"

#!/bin/sh
# Admin-plane smoke test: boot pbtree-server with -admin, drive a short
# mixed load, and assert the operational endpoints answer while the
# data path is busy: /healthz says ok, /metrics carries the per-op,
# per-stage and per-shard families, /statsz returns the STATS JSON and
# /debug/vars exposes the expvar registry (the PublishExpvar surface
# that had no listener before the admin plane existed).
set -eu

tmp=$(mktemp -d)
port=$((19000 + $$ % 1000))
aport=$((20000 + $$ % 1000))
addr="127.0.0.1:$port"
admin="127.0.0.1:$aport"
keys=100000

cleanup() {
    [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbtree-server" ./cmd/pbtree-server
go build -o "$tmp/pbtree-loadgen" ./cmd/pbtree-loadgen

"$tmp/pbtree-server" -addr "$addr" -admin "$admin" -keys "$keys" -shards 4 \
    >"$tmp/server.log" 2>&1 &
srv=$!

fetch() {
    # curl when present, else a tiny Go HTTP GET (CI images vary).
    if command -v curl >/dev/null 2>&1; then
        curl -sf "http://$admin$1"
    else
        go run ./scripts/httpget "http://$admin$1"
    fi
}

ok=0
for _ in $(seq 1 50); do
    if fetch /healthz >"$tmp/healthz" 2>/dev/null; then
        ok=1
        break
    fi
    kill -0 "$srv" 2>/dev/null || { echo "smoke-admin: server died:"; cat "$tmp/server.log"; exit 1; }
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "smoke-admin: admin plane never became reachable"; cat "$tmp/server.log"; exit 1; }
grep -q "ok" "$tmp/healthz" || { echo "smoke-admin: /healthz not ok"; cat "$tmp/healthz"; exit 1; }

# Drive load so the metric families have samples, and scrape while the
# data path is busy.
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns 4 -window 4 \
    -duration 2s -skew zipf -put 10 >/dev/null 2>&1 &
load=$!
sleep 1
fetch /metrics >"$tmp/metrics" || { echo "smoke-admin: /metrics failed under load"; exit 1; }
fetch /statsz >"$tmp/statsz" || { echo "smoke-admin: /statsz failed under load"; exit 1; }
fetch /debug/vars >"$tmp/vars" || { echo "smoke-admin: /debug/vars failed under load"; exit 1; }
wait "$load" || { echo "smoke-admin: loadgen failed"; exit 1; }

for family in pbtree_op_latency_seconds pbtree_stage_latency_seconds \
    pbtree_request_latency_seconds pbtree_shard_queue_depth pbtree_shard_ready; do
    grep -q "$family" "$tmp/metrics" \
        || { echo "smoke-admin: /metrics missing $family"; head -40 "$tmp/metrics"; exit 1; }
done
grep -q 'stage="wal_fsync"\|stage="exec"\|stage="batch_wait"' "$tmp/metrics" \
    || { echo "smoke-admin: no per-stage samples in /metrics"; exit 1; }
grep -q '"server_stages"' "$tmp/statsz" \
    || { echo "smoke-admin: /statsz missing server_stages"; head -20 "$tmp/statsz"; exit 1; }
grep -q '"pbtree"' "$tmp/vars" \
    || { echo "smoke-admin: expvar registry not published"; exit 1; }

kill -TERM "$srv"
wait "$srv" || { echo "smoke-admin: server exited nonzero:"; cat "$tmp/server.log"; exit 1; }
srv=
grep -q "drained cleanly" "$tmp/server.log" \
    || { echo "smoke-admin: no clean drain:"; cat "$tmp/server.log"; exit 1; }

echo "smoke-admin: OK (healthz, metrics with stage families, statsz, expvar, clean drain)"

#!/bin/sh
# Documentation gate: fails when the serving layer's docs drift from
# the code.
#   - gofmt must be clean (doc comments are part of the formatted
#     source).
#   - go vet over everything.
#   - TestExportedSymbolsDocumented: every exported symbol in
#     internal/serve, the storage-engine packages and internal/repl
#     carries a doc comment.
#   - TestProtocolSpec*: PROTOCOL.md's example frames match the codec
#     byte for byte and its size-limit table matches the constants.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "docs-check: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test ./internal/serve -run 'TestExportedSymbolsDocumented|TestProtocolSpec' -count=1
echo "docs-check: OK"

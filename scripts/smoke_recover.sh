#!/bin/sh
# Recovery smoke test: boot a durable pbtree-server (-data-dir, -fsync
# always), drive put-heavy load, kill -9 mid-load, restart on the same
# directory, and assert that (a) the server reports WAL replay, (b) the
# whole preloaded key space is served afterwards (not_found == 0 under
# a GET-only sweep), and (c) the restarted server still drains cleanly.
#
# BACKEND selects the storage engine under test (pbtree or lsm,
# default pbtree); the whole protocol is engine-agnostic.
set -eu

backend="${BACKEND:-pbtree}"
tmp=$(mktemp -d)
port=$((18000 + $$ % 1000))
addr="127.0.0.1:$port"
keys=20000
data="$tmp/data"

cleanup() {
    [ -n "${srv:-}" ] && kill -9 "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbtree-server" ./cmd/pbtree-server
go build -o "$tmp/pbtree-loadgen" ./cmd/pbtree-loadgen

start_server() {
    "$tmp/pbtree-server" -addr "$addr" -keys "$keys" -shards 4 \
        -backend "$backend" -data-dir "$data" -fsync always >"$1" 2>&1 &
    srv=$!
    ok=0
    for _ in $(seq 1 50); do
        if "$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns 1 \
            -duration 100ms >/dev/null 2>&1; then
            ok=1
            break
        fi
        kill -0 "$srv" 2>/dev/null || { echo "smoke-recover: server died:"; cat "$1"; exit 1; }
        sleep 0.2
    done
    [ "$ok" = 1 ] || { echo "smoke-recover: server never became reachable"; cat "$1"; exit 1; }
}

# Boot 1: fresh directory, put-heavy load, then a hard kill mid-load.
start_server "$tmp/server1.log"
grep -q "bootstrapped" "$tmp/server1.log" \
    || { echo "smoke-recover: fresh directory not bootstrapped:"; cat "$tmp/server1.log"; exit 1; }
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns 4 \
    -duration 5s -put 90 -del 0 >/dev/null 2>&1 &
load=$!
sleep 1
kill -9 "$srv"
srv=
wait "$load" 2>/dev/null || true  # loadgen dies with the connection; expected

# Boot 2: same directory. The WAL tail must be replayed.
start_server "$tmp/server2.log"
grep -q "recovered" "$tmp/server2.log" \
    || { echo "smoke-recover: no recovery after kill -9:"; cat "$tmp/server2.log"; exit 1; }
grep -Eq "replayed=[1-9][0-9]*" "$tmp/server2.log" \
    || { echo "smoke-recover: nothing replayed from the WAL:"; cat "$tmp/server2.log"; exit 1; }

# Every preloaded key must still be served (puts only overwrote).
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns 2 \
    -duration 1s -get 100 >"$tmp/verify.json"
ops=$(sed -n 's/^  "ops": \([0-9]*\),$/\1/p' "$tmp/verify.json")
notfound=$(sed -n 's/^  "not_found": \([0-9]*\),$/\1/p' "$tmp/verify.json")
[ -n "$ops" ] && [ "$ops" -gt 0 ] \
    || { echo "smoke-recover: verification sweep did nothing"; exit 1; }
[ "$notfound" = 0 ] \
    || { echo "smoke-recover: $notfound keys missing after recovery"; exit 1; }

# The recovered server still drains cleanly.
kill -TERM "$srv"
wait "$srv" || { echo "smoke-recover: restarted server exited nonzero:"; cat "$tmp/server2.log"; exit 1; }
srv=
grep -q "drained cleanly" "$tmp/server2.log" \
    || { echo "smoke-recover: no clean drain after recovery:"; cat "$tmp/server2.log"; exit 1; }

replayed=$(sed -n 's/.*replayed=\([0-9]*\).*/\1/p' "$tmp/server2.log" | awk '{s+=$1} END {print s}')
echo "smoke-recover: OK (backend $backend, kill -9 survived, $replayed WAL records replayed, $ops GETs verified, 0 missing)"

// Command httpget is a minimal HTTP client for the smoke scripts: it
// prints the response body to stdout and exits nonzero on transport
// errors or non-2xx statuses. It exists so the scripts do not depend
// on curl being installed (CI images vary). The optional -post flag
// issues an empty-bodied POST (the failover runbook's /promote).
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	args := os.Args[1:]
	post := false
	if len(args) > 0 && args[0] == "-post" {
		post = true
		args = args[1:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: httpget [-post] <url>")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	var (
		resp *http.Response
		err  error
	)
	if post {
		resp, err = client.Post(args[0], "", nil)
	} else {
		resp, err = client.Get(args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		io.Copy(os.Stderr, resp.Body)
		fmt.Fprintln(os.Stderr, "httpget:", resp.Status)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
}

// Command httpget is a minimal HTTP GET for the smoke scripts: it
// prints the response body to stdout and exits nonzero on transport
// errors or non-2xx statuses. It exists so the scripts do not depend
// on curl being installed (CI images vary).
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: httpget <url>")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		io.Copy(os.Stderr, resp.Body)
		fmt.Fprintln(os.Stderr, "httpget:", resp.Status)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
}

#!/bin/sh
# Benchmark matrix: every named loadgen scenario against every storage
# backend. For each backend, boot one in-memory pbtree-server (no WAL,
# so the numbers compare the engines, not the shared durability path)
# and run each scenario's loadgen against it; write the full grid of
# loadgen JSON reports to the file named by $1 (default
# BENCH_matrix.json) as {"<backend>": {"<scenario>": <report>, ...}}.
#
# Tunables (env): KEYS (preloaded key space, default 200000), DURATION
# (per cell, default 3s), CONNS (default 4), WINDOW (default 8). CI
# runs a short DURATION pass as a smoke gate; EXPERIMENTS.md records a
# full run.
set -eu

out=${1:-BENCH_matrix.json}
keys="${KEYS:-200000}"
duration="${DURATION:-3s}"
conns="${CONNS:-4}"
window="${WINDOW:-8}"
backends="pbtree lsm"
scenarios="oltp-point olap-scan write-burst hot-key-storm mixed-tenant"
tmp=$(mktemp -d)
port=$((19000 + $$ % 1000))
addr="127.0.0.1:$port"

cleanup() {
    [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbtree-server" ./cmd/pbtree-server
go build -o "$tmp/pbtree-loadgen" ./cmd/pbtree-loadgen

wait_reachable() {
    ok=0
    for _ in $(seq 1 50); do
        if "$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns 1 \
            -duration 100ms >/dev/null 2>&1; then
            ok=1
            break
        fi
        kill -0 "$srv" 2>/dev/null || { echo "bench-matrix: server died:"; cat "$tmp/server.log"; exit 1; }
        sleep 0.2
    done
    [ "$ok" = 1 ] || { echo "bench-matrix: server never became reachable"; cat "$tmp/server.log"; exit 1; }
}

for be in $backends; do
    "$tmp/pbtree-server" -addr "$addr" -keys "$keys" -backend "$be" \
        >"$tmp/server.log" 2>&1 &
    srv=$!
    wait_reachable
    for sc in $scenarios; do
        echo "bench-matrix: $be / $sc ($duration)"
        "$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns "$conns" \
            -window "$window" -duration "$duration" -scenario "$sc" \
            >"$tmp/$be-$sc.json"
    done
    kill -TERM "$srv"
    wait "$srv" || true
    srv=
done

{
    printf '{'
    bsep=
    for be in $backends; do
        printf '%s\n"%s": {' "$bsep" "$be"
        bsep=,
        ssep=
        for sc in $scenarios; do
            printf '%s\n"%s":\n' "$ssep" "$sc"
            ssep=,
            cat "$tmp/$be-$sc.json"
        done
        printf '}'
    done
    printf '\n}\n'
} >"$out"

# Sanity: every cell did work. The write-burst comparison is the
# LSM's reason to exist — surface it.
for be in $backends; do
    for sc in $scenarios; do
        ops=$(sed -n 's/^  "ops": \([0-9]*\),$/\1/p' "$tmp/$be-$sc.json")
        [ -n "$ops" ] && [ "$ops" -gt 0 ] \
            || { echo "bench-matrix: $be/$sc completed no operations"; exit 1; }
    done
done
wb_pb=$(sed -n 's/^  "ops_per_sec": \([0-9.]*\),$/\1/p' "$tmp/pbtree-write-burst.json")
wb_lsm=$(sed -n 's/^  "ops_per_sec": \([0-9.]*\),$/\1/p' "$tmp/lsm-write-burst.json")
echo "bench-matrix: write-burst ops/sec: pbtree $wb_pb, lsm $wb_lsm"
echo "bench-matrix: wrote $out"

#!/bin/sh
# Short-budget fuzz sweep: discover every Fuzz target in the module and
# run each for FUZZTIME (default 5s). Catches regressions in the
# decoders' no-panic/no-overread contracts without burning CI time; the
# committed seed corpora under testdata/fuzz always run even in plain
# `go test`.
set -eu

fuzztime="${FUZZTIME:-5s}"
fail=0
for pkg in $(go list ./...); do
    targets=$(go test -list '^Fuzz' "$pkg" 2>/dev/null | grep '^Fuzz' || true)
    [ -n "$targets" ] || continue
    for t in $targets; do
        echo "fuzz-smoke: $pkg $t ($fuzztime)"
        if ! go test -run '^$' -fuzz "^${t}\$" -fuzztime "$fuzztime" "$pkg"; then
            fail=1
        fi
    done
done
[ "$fail" = 0 ] || { echo "fuzz-smoke: FAILED"; exit 1; }
echo "fuzz-smoke: OK"

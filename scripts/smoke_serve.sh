#!/bin/sh
# Server smoke test: boot pbtree-server, drive ~2s of mixed load with
# pbtree-loadgen, then SIGTERM and assert a clean graceful drain.
# Exits nonzero if the server fails to start, the loadgen completes
# zero operations (its own exit contract), or the drain is not clean.
set -eu

tmp=$(mktemp -d)
port=$((17000 + $$ % 1000))
addr="127.0.0.1:$port"
keys=100000

cleanup() {
    [ -n "${srv:-}" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/pbtree-server" ./cmd/pbtree-server
go build -o "$tmp/pbtree-loadgen" ./cmd/pbtree-loadgen

"$tmp/pbtree-server" -addr "$addr" -keys "$keys" -shards 4 \
    >"$tmp/server.log" 2>&1 &
srv=$!

# Wait for the listener (up to ~5s), probing with a minimal load run.
ok=0
for _ in $(seq 1 25); do
    if "$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns 1 \
        -duration 100ms >/dev/null 2>&1; then
        ok=1
        break
    fi
    kill -0 "$srv" 2>/dev/null || { echo "smoke-serve: server died:"; cat "$tmp/server.log"; exit 1; }
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "smoke-serve: server never became reachable"; cat "$tmp/server.log"; exit 1; }

# The real run: 2s of the default mixed workload with Zipf skew.
"$tmp/pbtree-loadgen" -addr "$addr" -keys "$keys" -conns 4 \
    -duration 2s -skew zipf >"$tmp/loadgen.json"

# Graceful drain.
kill -TERM "$srv"
wait "$srv" || { echo "smoke-serve: server exited nonzero:"; cat "$tmp/server.log"; exit 1; }
srv=
grep -q "drained cleanly" "$tmp/server.log" \
    || { echo "smoke-serve: no clean drain:"; cat "$tmp/server.log"; exit 1; }

ops=$(sed -n 's/^  "ops": \([0-9]*\),$/\1/p' "$tmp/loadgen.json")
echo "smoke-serve: OK ($ops ops, clean drain)"

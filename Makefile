# Developer entry points. `make` (or `make check`) is the full gate:
# build + vet + tests + the race detector over every package + the
# server smoke test (boot, load, graceful drain) + the recovery smoke
# test (kill -9 mid-load, restart, verify).

GO ?= go

.PHONY: check build test race vet conformance bench-smoke smoke-serve smoke-recover smoke-admin smoke-failover fuzz-smoke bench-serve bench-matrix bench-native docs-check cross

check: build vet test race conformance smoke-serve smoke-recover smoke-admin smoke-failover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Backend conformance suite: every storage engine (pbtree and lsm)
# must pass the same atomicity / snapshot-consistency / crash-recovery
# properties, under the race detector.
conformance:
	$(GO) test -race -count=1 ./internal/serve/backendtest/

# A fast wall-clock sanity run of the native-mode benchmarks.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkNativeConcurrent' -benchtime 100x .

# End-to-end server smoke test: start pbtree-server, drive ~2s of load
# with pbtree-loadgen, assert nonzero ops and a clean SIGTERM drain.
smoke-serve:
	sh scripts/smoke_serve.sh

# End-to-end crash-recovery smoke test: durable server, put-heavy
# load, kill -9 mid-load, restart on the same -data-dir, assert WAL
# replay and a complete key space. Runs once per storage backend.
smoke-recover:
	BACKEND=pbtree sh scripts/smoke_recover.sh
	BACKEND=lsm sh scripts/smoke_recover.sh

# Admin-plane smoke test: start pbtree-server with -admin, scrape
# /healthz, /metrics (asserting the per-stage and per-shard families),
# /statsz and /debug/vars while load is running.
smoke-admin:
	sh scripts/smoke_admin.sh

# Failover smoke test: synchronous primary + read replica, put-heavy
# load, kill -9 the primary mid-load, promote the replica over the
# admin plane (/promote), assert the acked key space survives and the
# new primary serves writes. Runs once per storage backend.
smoke-failover:
	BACKEND=pbtree sh scripts/smoke_failover.sh
	BACKEND=lsm sh scripts/smoke_failover.sh

# Short-budget fuzz of every Fuzz target in the module (FUZZTIME=5s
# per target by default).
fuzz-smoke:
	sh scripts/fuzz_smoke.sh

# Serving benchmark: 5s mixed Zipf load against a 1M-key server,
# sequential (window=1) and pipelined (window=16) at equal connection
# count; writes both reports to BENCH_serve.json.
bench-serve:
	sh scripts/bench_serve.sh BENCH_serve.json

# Benchmark matrix: every named loadgen scenario against every
# storage backend; writes the grid of reports to BENCH_matrix.json.
# Tunable via KEYS/DURATION/CONNS/WINDOW env vars (CI runs a short
# pass).
bench-matrix:
	sh scripts/bench_matrix.sh BENCH_matrix.json

# Native prefetch matrix: the oltp-point scenario across hardware
# prefetch x branchless search (server + loadgen), plus pbench's
# in-process wall-clock report; writes BENCH_native.json. Tunable via
# KEYS/DURATION/CONNS/WINDOW/SCALE env vars.
bench-native:
	sh scripts/bench_native.sh BENCH_native.json

# Documentation gate: gofmt + vet + the godoc coverage test over
# internal/serve + the PROTOCOL.md byte-for-byte conformance test.
docs-check:
	sh scripts/docs_check.sh

# Cross-compile matrix: the hardware prefetch stubs must assemble on
# both asm targets and the module must still build where no stub
# exists (riscv64) or when it is disabled (-tags purego). The purego
# test run proves the memsys contract holds with no-op stubs.
cross:
	GOARCH=amd64 $(GO) build ./...
	GOARCH=arm64 $(GO) build ./...
	GOARCH=riscv64 $(GO) build ./...
	$(GO) build -tags purego ./...
	$(GO) test -tags purego ./internal/memsys/ ./internal/core/

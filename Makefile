# Developer entry points. `make` (or `make check`) is the full gate:
# build + vet + tests + the race detector over every package.

GO ?= go

.PHONY: check build test race vet bench-smoke

check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A fast wall-clock sanity run of the native-mode benchmarks.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkNativeConcurrent' -benchtime 100x .

package pbtree_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus per-operation microbenchmarks of each tree variant.
//
// Figure benchmarks run the corresponding experiment from internal/exp
// at a reduced scale (the CLI `pbench -fig <id> -scale 1` reproduces
// paper-sized runs). Reported metrics are simulated cycles, which is
// what the paper plots; wall-clock ns/op measures the simulator, not
// the algorithms.

import (
	"math/rand"
	"testing"

	"pbtree"
	"pbtree/internal/exp"
)

// benchScale keeps the per-iteration cost of figure benchmarks low.
const benchScale = 0.002

func benchFigure(b *testing.B, id string) {
	o := exp.Options{Scale: benchScale, Seed: 1}
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(id, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkFigure01Breakdown(b *testing.B)      { benchFigure(b, "fig1") }
func BenchmarkFigure02NodeTiming(b *testing.B)     { benchFigure(b, "fig2") }
func BenchmarkFigure03ScanTiming(b *testing.B)     { benchFigure(b, "fig3") }
func BenchmarkFigure07SearchSweep(b *testing.B)    { benchFigure(b, "fig7") }
func BenchmarkTable03TreeLevels(b *testing.B)      { benchFigure(b, "tab3") }
func BenchmarkFigure08BulkloadFactor(b *testing.B) { benchFigure(b, "fig8") }
func BenchmarkFigure09ScanStructures(b *testing.B) { benchFigure(b, "fig9") }
func BenchmarkFigure10RangeScans(b *testing.B)     { benchFigure(b, "fig10") }
func BenchmarkFigure11SegmentedScans(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFigure12Updates(b *testing.B)        { benchFigure(b, "fig12") }
func BenchmarkFigure13SplitAnalysis(b *testing.B)  { benchFigure(b, "fig13") }
func BenchmarkFigure14MatureTrees(b *testing.B)    { benchFigure(b, "fig14") }
func BenchmarkFigure15MatureScans(b *testing.B)    { benchFigure(b, "fig15") }
func BenchmarkFigure16Sensitivity(b *testing.B)    { benchFigure(b, "fig16") }
func BenchmarkFigure17CachePerf(b *testing.B)      { benchFigure(b, "fig17") }
func BenchmarkExtDiskResident(b *testing.B)        { benchFigure(b, "extdisk") }
func BenchmarkExtAblations(b *testing.B)           { benchFigure(b, "extablation") }
func BenchmarkExtCSBInsertion(b *testing.B)        { benchFigure(b, "extcsb") }
func BenchmarkExtIndexGenerations(b *testing.B)    { benchFigure(b, "extindexes") }

// --- per-operation microbenchmarks -------------------------------

const benchKeys = 200_000

func benchPairs() []pbtree.Pair {
	pairs := make([]pbtree.Pair, benchKeys)
	for i := range pairs {
		pairs[i] = pbtree.Pair{Key: pbtree.Key(8 * (i + 1)), TID: pbtree.TID(i + 1)}
	}
	return pairs
}

// opVariants is the per-operation benchmark lineup.
var opVariants = []struct {
	name string
	cfg  pbtree.Config
}{
	{"Bplus", pbtree.Config{Width: 1}},
	{"p8", pbtree.Config{Width: 8, Prefetch: true}},
	{"p8e", pbtree.Config{Width: 8, Prefetch: true, JumpArray: pbtree.JumpExternal}},
	{"p8i", pbtree.Config{Width: 8, Prefetch: true, JumpArray: pbtree.JumpInternal}},
	// Ablation: wide nodes without prefetch lose (equation 1).
	{"w8noPrefetch", pbtree.Config{Width: 8}},
}

func buildBenchTree(b *testing.B, cfg pbtree.Config) *pbtree.Tree {
	b.Helper()
	t := pbtree.MustNew(cfg)
	if err := t.Bulkload(benchPairs(), 1.0); err != nil {
		b.Fatal(err)
	}
	t.Mem().ResetStats()
	return t
}

// reportSimCycles attaches the simulated cycles/op metric.
func reportSimCycles(b *testing.B, t *pbtree.Tree, start uint64) {
	b.ReportMetric(float64(t.Mem().Now()-start)/float64(b.N), "simcycles/op")
}

func BenchmarkSearchWarm(b *testing.B) {
	for _, v := range opVariants {
		b.Run(v.name, func(b *testing.B) {
			t := buildBenchTree(b, v.cfg)
			r := rand.New(rand.NewSource(1))
			start := t.Mem().Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := t.Search(pbtree.Key(8 * (r.Intn(benchKeys) + 1))); !ok {
					b.Fatal("lost key")
				}
			}
			reportSimCycles(b, t, start)
		})
	}
}

func BenchmarkSearchCold(b *testing.B) {
	for _, v := range opVariants {
		b.Run(v.name, func(b *testing.B) {
			t := buildBenchTree(b, v.cfg)
			r := rand.New(rand.NewSource(2))
			start := t.Mem().Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Mem().FlushCaches()
				if _, ok := t.Search(pbtree.Key(8 * (r.Intn(benchKeys) + 1))); !ok {
					b.Fatal("lost key")
				}
			}
			reportSimCycles(b, t, start)
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	for _, v := range opVariants {
		b.Run(v.name, func(b *testing.B) {
			t := buildBenchTree(b, v.cfg)
			r := rand.New(rand.NewSource(3))
			start := t.Mem().Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Insert(pbtree.Key(8*(r.Intn(benchKeys)+1)+1+r.Intn(7)), 1)
			}
			reportSimCycles(b, t, start)
		})
	}
}

func BenchmarkDelete(b *testing.B) {
	for _, v := range opVariants {
		b.Run(v.name, func(b *testing.B) {
			t := buildBenchTree(b, v.cfg)
			r := rand.New(rand.NewSource(4))
			start := t.Mem().Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Delete(pbtree.Key(8 * (r.Intn(benchKeys) + 1)))
			}
			reportSimCycles(b, t, start)
		})
	}
}

// BenchmarkScan1000 scans 1000 tupleIDs per iteration from a cold
// cache (one Figure 10(a) request).
func BenchmarkScan1000(b *testing.B) {
	for _, v := range opVariants {
		b.Run(v.name, func(b *testing.B) {
			t := buildBenchTree(b, v.cfg)
			r := rand.New(rand.NewSource(5))
			start := t.Mem().Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Mem().FlushCaches()
				k := pbtree.Key(8 * (r.Intn(benchKeys-2000) + 1))
				if got := t.Scan(k, 1000); got != 1000 {
					b.Fatal("short scan")
				}
			}
			reportSimCycles(b, t, start)
		})
	}
}

// BenchmarkBulkload builds the whole index per iteration.
func BenchmarkBulkload(b *testing.B) {
	pairs := benchPairs()
	for _, v := range opVariants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := pbtree.MustNew(v.cfg)
				if err := t.Bulkload(pairs, 0.9); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectTuples measures the section 5 tuple-returning range
// selection (1000 rows per iteration) with batch tuple prefetching.
func BenchmarkSelectTuples(b *testing.B) {
	mem := pbtree.DefaultHierarchy()
	space := pbtree.NewAddressSpace(mem.Config().LineSize)
	tab := pbtree.MustNewHeap(mem, space, 64)
	pairs := make([]pbtree.Pair, benchKeys)
	for i := range pairs {
		k := pbtree.Key(8 * (i + 1))
		pairs[i] = pbtree.Pair{Key: k, TID: tab.Append(k)}
	}
	t := pbtree.MustNew(pbtree.Config{
		Width: 8, Prefetch: true, JumpArray: pbtree.JumpExternal,
		Mem: mem, Space: space,
	})
	if err := t.Bulkload(pairs, 1.0); err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	start := mem.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem.FlushCaches()
		lo := pbtree.Key(8 * (r.Intn(benchKeys-2000) + 1))
		if got := pbtree.SelectTuples(t, tab, lo, lo+8*999, pbtree.QueryOptions{}, nil); got < 999 {
			b.Fatalf("selected %d", got)
		}
	}
	b.ReportMetric(float64(mem.Now()-start)/float64(b.N), "simcycles/op")
}

// BenchmarkCSBSearch benchmarks the CSB+ baseline for comparison.
func BenchmarkCSBSearch(b *testing.B) {
	for _, w := range []struct {
		name string
		cfg  pbtree.CSBConfig
	}{
		{"CSB", pbtree.CSBConfig{Width: 1}},
		{"p8CSB", pbtree.CSBConfig{Width: 8, Prefetch: true}},
	} {
		b.Run(w.name, func(b *testing.B) {
			t := pbtree.MustNewCSB(w.cfg)
			if err := t.Bulkload(benchPairs(), 1.0); err != nil {
				b.Fatal(err)
			}
			t.Mem().ResetStats()
			r := rand.New(rand.NewSource(6))
			start := t.Mem().Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := t.Search(pbtree.Key(8 * (r.Intn(benchKeys) + 1))); !ok {
					b.Fatal("lost key")
				}
			}
			b.ReportMetric(float64(t.Mem().Now()-start)/float64(b.N), "simcycles/op")
		})
	}
}

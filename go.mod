module pbtree

go 1.22
